"""The differential conformance oracles with typed mismatch reports.

Each oracle compares two independent descriptions of the same
computation on a deterministic randomized workload and returns an
:class:`OracleReport` listing every violated check as a typed
:class:`Mismatch`:

* ``backend`` — the batched (SoA) estimator linearization against the
  per-factor loop reference: same cost, same normal equations, same
  solution.
* ``functional`` — the functional accelerator datapath
  (:func:`repro.hw.sim.functional.run_iteration_functional`) against the
  software :meth:`~repro.slam.problem.LinearSystem.solve`: identical
  update vectors, positive finite cycle counts.
* ``trace`` — the cycle-level accelerator simulation against the
  analytical latency models (Equ. 6-10, 13-15), judged by
  :meth:`~repro.hw.sim.trace.TraceSimulation.model_agreement`.
* ``fixedpoint`` — Q-format quantized solves against the float64
  reference, with error bounds tied to the format's resolution.
* ``plan_solve`` — the :class:`repro.linalg.plan.SolverPlan` structured
  path against the independent dense float64 solve
  (:meth:`~repro.slam.problem.LinearSystem.solve_dense`), plus
  bit-identity of a reused plan vs a freshly built one.
* ``mixed_precision`` — the float32 + iterative-refinement plan against
  the float64 plan, within 1e-9 of the solution scale.
* ``router`` — the portfolio tier's marginal-completion-time router
  (:func:`repro.portfolio.choose_instance`) against the brute-force
  scan of every (completion, energy, index) tuple, window by window on
  a contended heterogeneous pool: exact index agreement, tolerance 0.

Every oracle accepts a ``perturbation`` knob that deliberately skews one
side of the comparison; the conformance CLI's ``--perturb`` flag (and
the self-test in ``tests/test_conformance.py``) uses it to prove the
oracles actually detect disagreement instead of passing vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from repro.hw.config import HardwareConfig
from repro.hw.fixedpoint import QFormat, wordlength_study
from repro.hw.sim.functional import run_iteration_functional
from repro.hw.sim.trace import simulate_windows
from repro.testing.workloads import (
    make_random_window,
    make_stats_series,
)

# Numerical budgets. The batched/loop and functional/software pairs run
# the same kernels modulo BLAS-level reassociation, so they get
# rounding-level budgets; the trace oracle inherits the model-agreement
# bound the co-simulation tests establish; the fixed-point bounds are
# calibrated against the wordlength study's noise floor on randomized
# windows. The backend budget is wider than tests/test_slam_batch.py's
# unit-scale TOL because fig11-scale blocks accumulate thousands of
# reassociated terms with large cancellations (measured deviation
# ~3e-10 absolute); it still sits six orders below any real defect.
BACKEND_RTOL = 1e-9
BACKEND_ATOL = 1e-8
FUNCTIONAL_ATOL = 1e-11
TRACE_AGREEMENT_TOL = 0.35
FIXEDPOINT_BITS = (8, 12, 16, 20, 24)
# Relative solution error allowed per fraction-bit count: a constant
# amplification factor over the format resolution, floored at the
# float64 noise the study itself bottoms out at.
FIXEDPOINT_AMPLIFICATION = 2.0e4
FIXEDPOINT_FLOOR = 1e-9
# Structured-vs-dense: two genuinely different algorithms (Schur + two
# triangular solves vs one dense LU), so conditioning-amplified rounding
# is expected; the budget still sits orders below any structural defect.
PLAN_RTOL = 1e-8
PLAN_ATOL = 1e-8
# Float32 carries ~1e-7 relative error; refinement must pull the final
# solution to within 1e-9 of the float64 answer (ISSUE acceptance bound),
# scaled by the solution magnitude.
MIXED_PRECISION_ATOL = 1e-9
# Refinement stops at a 1e-13 relative *residual* (REFINEMENT_RTOL), so
# the *solution* error it can reach scales with the system conditioning.
# The degenerate scenario regimes are ill-conditioned by design
# (near-zero baselines, large rotations, low parallax): measured worst
# case ~1e-8 across seeds, against ~1e-2 for an unrefined float32 solve
# on the same systems. 5e-8 keeps the refinement claim sharp there.
MIXED_PRECISION_SCENARIO_ATOL = 5e-8


@dataclass(frozen=True)
class ConformanceWorkload:
    """One deterministic workload scale of the conformance matrix.

    ``scenario`` selects the workload regime (``"nominal"`` is the
    historical well-conditioned shape; see :mod:`repro.scenarios` for
    the degenerate regimes). ``design`` pins a named design point from
    :data:`DESIGN_POINTS` — empty means the legacy seed-cycled pool.
    """

    name: str
    seed: int
    num_keyframes: int
    num_features: int
    num_windows: int
    scenario: str = "nominal"
    design: str = ""

    def label(self) -> str:
        label = (
            f"{self.name}(seed={self.seed}, b={self.num_keyframes}, "
            f"a={self.num_features}, windows={self.num_windows})"
        )
        if self.scenario != "nominal" or self.design:
            label += f"[{self.scenario}"
            if self.design:
                label += f", {self.design}"
            label += "]"
        return label


@dataclass(frozen=True)
class Mismatch:
    """One violated conformance check."""

    metric: str
    expected: float
    actual: float
    tolerance: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "expected": self.expected,
            "actual": self.actual,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


@dataclass
class OracleReport:
    """Outcome of one oracle on one workload."""

    oracle: str
    workload: str
    checks: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    seconds: float = 0.0
    info: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def check_scalar(
        self, metric: str, expected: float, actual: float, tolerance: float,
        detail: str = "",
    ) -> None:
        """Record a |actual - expected| <= tolerance check."""
        self.checks += 1
        difference = abs(float(actual) - float(expected))
        if not np.isfinite(actual) or difference > tolerance:
            self.mismatches.append(
                Mismatch(metric, float(expected), float(actual), tolerance, detail)
            )

    def check_array(
        self, metric: str, expected: np.ndarray, actual: np.ndarray,
        rtol: float, atol: float,
    ) -> None:
        """Record an elementwise allclose check, reporting the worst entry."""
        self.checks += 1
        expected = np.asarray(expected, dtype=float)
        actual = np.asarray(actual, dtype=float)
        if expected.shape != actual.shape:
            self.mismatches.append(
                Mismatch(metric, 0.0, 0.0, atol, f"shape {expected.shape} vs {actual.shape}")
            )
            return
        if expected.size == 0:
            return
        budget = atol + rtol * np.abs(expected)
        excess = np.abs(actual - expected) - budget
        excess = np.where(np.isnan(actual) | np.isnan(expected), np.inf, excess)
        worst = int(np.argmax(excess))
        if excess.flat[worst] > 0.0:
            self.mismatches.append(
                Mismatch(
                    metric,
                    float(expected.flat[worst]),
                    float(actual.flat[worst]),
                    float(np.asarray(budget).flat[worst] if np.ndim(budget) else budget),
                    f"worst element {np.unravel_index(worst, expected.shape)} "
                    f"of {expected.shape}",
                )
            )

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "workload": self.workload,
            "passed": self.passed,
            "checks": self.checks,
            "mismatches": [m.to_dict() for m in self.mismatches],
            "seconds": self.seconds,
            "info": self.info,
        }


# The named design points of the scenario x config matrix: one
# resource-starved corner and one high-performance corner of the
# (nd, nm, s) space, so every regime is checked at >= 2 configurations.
DESIGN_POINTS: dict[str, HardwareConfig] = {
    "dp-small": HardwareConfig(4, 4, 8),
    "dp-large": HardwareConfig(16, 8, 24),
}


def _hardware_config_for(workload: ConformanceWorkload) -> HardwareConfig:
    """The workload's pinned design point, else the seed-cycled pool."""
    if workload.design:
        if workload.design not in DESIGN_POINTS:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown design point {workload.design!r}; "
                f"choose from {sorted(DESIGN_POINTS)}"
            )
        return DESIGN_POINTS[workload.design]
    pool = (
        HardwareConfig(8, 8, 16),
        HardwareConfig(16, 8, 24),
        HardwareConfig(4, 4, 8),
        HardwareConfig(24, 16, 48),
    )
    return pool[workload.seed % len(pool)]


# ----------------------------------------------------------------------
# Oracle 1: batched vs loop estimator backends
# ----------------------------------------------------------------------

def run_backend_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """Batched SoA linearization must clone the per-factor loop."""
    report = OracleReport("backend", workload.label())
    tic = perf_counter()
    batched = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        backend="batched",
        scenario=workload.scenario,
    )
    loop = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        backend="loop",
        scenario=workload.scenario,
    )

    cost_loop = loop.cost()
    cost_batched = batched.cost() + perturbation * max(abs(cost_loop), 1.0)
    report.check_scalar(
        "cost", cost_loop, cost_batched,
        BACKEND_ATOL + BACKEND_RTOL * abs(cost_loop),
    )

    system_l = loop.build_linear_system()
    system_b = batched.build_linear_system()
    if perturbation:
        system_b.u_diag = system_b.u_diag + perturbation * (
            np.abs(system_b.u_diag).max(initial=0.0) + 1.0
        )
    for name in ("u_diag", "w_block", "v_block", "b_x", "b_y"):
        report.check_array(
            name, getattr(system_l, name), getattr(system_b, name),
            BACKEND_RTOL, BACKEND_ATOL,
        )

    d_lambda_l, d_state_l = system_l.solve(damping=1e-4)
    d_lambda_b, d_state_b = system_b.solve(damping=1e-4)
    # The solve amplifies input rounding differences by the system's
    # conditioning; a modest widening keeps the check tight without
    # flaking on ill-conditioned random windows.
    report.check_array("d_lambda", d_lambda_l, d_lambda_b, 1e-9, 1e-8)
    report.check_array("d_state", d_state_l, d_state_b, 1e-9, 1e-8)

    report.info = {
        "cost": cost_loop,
        "num_features": float(system_l.num_features),
        "num_frames": float(system_l.num_frames),
    }
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 2: functional accelerator execution vs software solve
# ----------------------------------------------------------------------

def run_functional_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """The modeled hardware datapath must emit the software update."""
    report = OracleReport("functional", workload.label())
    tic = perf_counter()
    problem = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        scenario=workload.scenario,
    )
    config = _hardware_config_for(workload)
    damping = 1e-4

    hw = run_iteration_functional(problem, config, damping=damping)
    sw_lambda, sw_state = problem.build_linear_system().solve(damping=damping)
    hw_lambda = hw.d_lambda + perturbation
    hw_state = hw.d_state + perturbation

    report.check_array("d_lambda", sw_lambda, hw_lambda, 0.0, FUNCTIONAL_ATOL)
    report.check_array("d_state", sw_state, hw_state, 0.0, FUNCTIONAL_ATOL)
    report.check_scalar(
        "cycles_positive", 1.0, float(hw.cycles > 0 and np.isfinite(hw.cycles)), 0.0,
        detail=f"cycles={hw.cycles}",
    )
    report.check_scalar(
        "cholesky_rounds_positive", 1.0, float(hw.cholesky_rounds >= 1), 0.0,
        detail=f"rounds={hw.cholesky_rounds}",
    )

    report.info = {
        "cycles": float(hw.cycles),
        "seconds": float(hw.seconds),
        "cholesky_rounds": float(hw.cholesky_rounds),
    }
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 3: cycle-level trace simulation vs analytical latency model
# ----------------------------------------------------------------------

def run_trace_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """Simulated cycles must track the closed-form model."""
    report = OracleReport("trace", workload.label())
    tic = perf_counter()
    series = make_stats_series(
        workload.seed,
        num_windows=workload.num_windows,
        max_features=max(workload.num_features, 2),
        scenario=workload.scenario,
    )
    config = _hardware_config_for(workload)
    trace = simulate_windows(series, config, seed=workload.seed)
    if perturbation:
        # The agreement tolerance is intentionally loose (a *model*
        # bound, not a rounding bound), so a detectable skew must step
        # past it rather than scale with the knob alone.
        scale = 1.0 + 2.0 * TRACE_AGREEMENT_TOL + perturbation
        trace.analytical_cycles = [c * scale for c in trace.analytical_cycles]

    agreement = trace.model_agreement()
    report.check_scalar(
        "model_agreement", 0.0, agreement, TRACE_AGREEMENT_TOL,
        detail=f"mean relative |sim - model| over {len(trace.simulated_cycles)} windows",
    )
    sim = np.asarray(trace.simulated_cycles)
    model = np.asarray(trace.analytical_cycles)
    defined = model != 0.0
    if defined.any():
        worst = float(np.max(np.abs(sim[defined] - model[defined]) / model[defined]))
        report.check_scalar(
            "worst_window_agreement", 0.0, worst, 3.0 * TRACE_AGREEMENT_TOL,
            detail="max relative |sim - model| of any window",
        )
    report.check_scalar(
        "all_windows_finite", 1.0,
        float(np.all(np.isfinite(sim)) and np.all(np.isfinite(model))), 0.0,
    )

    report.info = {
        "model_agreement": agreement,
        "total_seconds": trace.total_seconds,
        "total_energy_j": trace.total_energy_j,
        "windows": float(len(trace.simulated_cycles)),
    }
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 4: fixed-point vs float64 solves
# ----------------------------------------------------------------------

def run_fixedpoint_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """Q-format solves must meet their resolution-scaled error bounds."""
    report = OracleReport("fixedpoint", workload.label())
    tic = perf_counter()
    problem = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        scenario=workload.scenario,
    )
    system = problem.build_linear_system()
    errors = wordlength_study(
        system.u_diag, system.w_block, system.v_block, system.b_x, system.b_y,
        fraction_bits=FIXEDPOINT_BITS,
    )
    if perturbation:
        errors = {bits: err + perturbation for bits, err in errors.items()}

    for bits in FIXEDPOINT_BITS:
        bound = max(
            FIXEDPOINT_AMPLIFICATION * QFormat(fraction_bits=bits).resolution,
            FIXEDPOINT_FLOOR,
        )
        report.check_scalar(
            f"relative_error_q{bits}", 0.0, errors[bits], bound,
            detail=f"||x_q - x|| / ||x|| at {bits} fraction bits",
        )
    # The wordlength curve must fall: the coarsest format cannot beat
    # the finest (the classic exponential-decay-to-noise-floor shape).
    coarse, fine = errors[FIXEDPOINT_BITS[0]], errors[FIXEDPOINT_BITS[-1]]
    report.check_scalar(
        "error_decreases_with_bits", 1.0, float(fine <= coarse), 0.0,
        detail=f"q{FIXEDPOINT_BITS[0]}={coarse:.3e} vs q{FIXEDPOINT_BITS[-1]}={fine:.3e}",
    )

    report.info = {f"q{bits}": float(errors[bits]) for bits in FIXEDPOINT_BITS}
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 5: SolverPlan structured solve vs the dense float64 reference
# ----------------------------------------------------------------------

def run_plan_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """The SolverPlan path must clone the independent dense solve, and a
    reused plan must be bit-identical to a freshly built one."""
    from repro.linalg.plan import SolverPlan

    report = OracleReport("plan_solve", workload.label())
    tic = perf_counter()
    problem = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        scenario=workload.scenario,
    )
    system = problem.build_linear_system()
    damping = 1e-4

    plan = SolverPlan(system.num_features, system.b_y.shape[0])
    plan_lambda, plan_state = system.solve(damping=damping, plan=plan)
    dense_lambda, dense_state = system.solve_dense(damping=damping)
    if perturbation:
        plan_lambda = plan_lambda + perturbation
        plan_state = plan_state + perturbation
    report.check_array("d_lambda", dense_lambda, plan_lambda, PLAN_RTOL, PLAN_ATOL)
    report.check_array("d_state", dense_state, plan_state, PLAN_RTOL, PLAN_ATOL)

    # Reuse: a third execute on the warmed plan and a fresh plan's first
    # execute must agree to the bit, or symbolic reuse is leaking state.
    reused_lambda, reused_state = system.solve(damping=damping, plan=plan)
    fresh = SolverPlan(system.num_features, system.b_y.shape[0])
    fresh_lambda, fresh_state = system.solve(damping=damping, plan=fresh)
    if perturbation:
        reused_lambda = reused_lambda + perturbation
    report.check_scalar(
        "reuse_bit_identical_lambda", 1.0,
        float(np.array_equal(reused_lambda, fresh_lambda)), 0.0,
        detail="reused plan vs fresh plan, landmark update",
    )
    report.check_scalar(
        "reuse_bit_identical_state", 1.0,
        float(np.array_equal(reused_state, fresh_state)), 0.0,
        detail="reused plan vs fresh plan, keyframe update",
    )
    report.check_scalar(
        "no_spurious_jitter", 0.0, float(plan.last_stats.jitter_applied), 0.0,
        detail="jitter must only appear on factorization failure",
    )

    report.info = {
        "num_features": float(system.num_features),
        "state_dim": float(system.b_y.shape[0]),
        "executions": float(plan.executions),
    }
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 6: float32 + iterative refinement vs the float64 plan
# ----------------------------------------------------------------------

def run_mixed_precision_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """The mixed-precision fast path must refine back to float64."""
    from repro.linalg.plan import SolverPlan

    report = OracleReport("mixed_precision", workload.label())
    tic = perf_counter()
    problem = make_random_window(
        workload.seed,
        num_keyframes=workload.num_keyframes,
        num_features=workload.num_features,
        scenario=workload.scenario,
    )
    system = problem.build_linear_system()
    damping = 1e-4

    ref_lambda, ref_state = system.solve(
        damping=damping,
        plan=SolverPlan(system.num_features, system.b_y.shape[0]),
    )
    mixed = SolverPlan(
        system.num_features, system.b_y.shape[0], precision="mixed"
    )
    mixed_lambda, mixed_state = system.solve(damping=damping, plan=mixed)
    if perturbation:
        mixed_state = mixed_state + perturbation

    scale = max(
        float(np.abs(ref_state).max(initial=0.0)),
        float(np.abs(ref_lambda).max(initial=0.0)),
        1.0,
    )
    atol = (
        MIXED_PRECISION_ATOL
        if workload.scenario == "nominal"
        else MIXED_PRECISION_SCENARIO_ATOL
    )
    report.check_array("d_lambda", ref_lambda, mixed_lambda, 0.0, atol * scale)
    report.check_array("d_state", ref_state, mixed_state, 0.0, atol * scale)
    report.check_scalar(
        "refinement_bounded", 1.0,
        float(0 <= mixed.last_stats.refinement_iterations <= 8), 0.0,
        detail=f"refinement_iterations={mixed.last_stats.refinement_iterations}",
    )

    report.info = {
        "refinement_iterations": float(mixed.last_stats.refinement_iterations),
        "num_features": float(system.num_features),
    }
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Oracle 7: marginal-cost router vs the brute-force argmin
# ----------------------------------------------------------------------

def run_router_oracle(
    workload: ConformanceWorkload, perturbation: float = 0.0
) -> OracleReport:
    """The marginal router must clone the exhaustive cost scan exactly.

    Replays the workload's stats series against a 3-instance
    heterogeneous pool (both named design points plus the workload's own
    config) with arrivals at half the fastest service time, so queues
    actually build and the ``free_at`` term of the marginal cost is
    load-bearing — an idle pool would only exercise the service-time
    tiebreak. Every window's :func:`repro.portfolio.choose_instance`
    pick must equal :func:`repro.portfolio.brute_force_choice` on the
    same tuples (tolerance 0: routing is exact, not approximate).
    ``perturbation`` rotates the brute-force side's service list, which
    moves its argmin on a heterogeneous pool.
    """
    from repro.hw.latency import window_latency_seconds
    from repro.hw.power import DEFAULT_POWER_MODEL
    from repro.portfolio.router import brute_force_choice, choose_instance

    report = OracleReport("router", workload.label())
    tic = perf_counter()
    series = make_stats_series(
        workload.seed,
        num_windows=workload.num_windows,
        max_features=max(workload.num_features, 2),
        scenario=workload.scenario,
    )
    configs = (
        DESIGN_POINTS["dp-small"],
        DESIGN_POINTS["dp-large"],
        _hardware_config_for(workload),
    )
    free_at = [0.0] * len(configs)
    routed = [0] * len(configs)
    now = 0.0
    for index, (stats, iterations) in enumerate(series):
        services = [
            window_latency_seconds(stats, config, iterations) for config in configs
        ]
        energies = [
            service * DEFAULT_POWER_MODEL.power(config)
            for service, config in zip(services, configs)
        ]
        oracle_services = list(services)
        if perturbation:
            oracle_services = oracle_services[1:] + oracle_services[:1]
        pick = choose_instance(now, free_at, services, energies)
        reference = brute_force_choice(now, free_at, oracle_services, energies)
        report.check_scalar(
            f"window_{index}_choice", float(reference), float(pick), 0.0,
            detail=f"free_at={['%.6f' % f for f in free_at]}",
        )
        routed[pick] += 1
        free_at[pick] = max(now, free_at[pick]) + services[pick]
        now += min(services) * 0.5
    report.check_scalar(
        "all_windows_routed", float(len(series)), float(sum(routed)), 0.0,
    )
    report.check_scalar(
        "cursors_finite", 1.0, float(np.all(np.isfinite(free_at))), 0.0,
    )

    report.info = {
        f"windows_on_{config.label}": float(count)
        for config, count in zip(configs, routed)
    }
    report.info["makespan_s"] = float(max(free_at))
    report.seconds = perf_counter() - tic
    return report


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

OracleRunner = Callable[..., OracleReport]

ORACLES: dict[str, OracleRunner] = {
    "backend": run_backend_oracle,
    "functional": run_functional_oracle,
    "trace": run_trace_oracle,
    "fixedpoint": run_fixedpoint_oracle,
    "plan_solve": run_plan_oracle,
    "mixed_precision": run_mixed_precision_oracle,
    "router": run_router_oracle,
}
