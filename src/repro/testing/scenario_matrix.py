"""The oracle x scenario x design-point conformance matrix.

The SLAMBench lesson (and the reconfigurable-accelerator follow-up's):
a claim holds only where it was *measured*, so every degenerate regime
must be exercised against every oracle at more than one hardware design
point, and every cell must be reported. This module extends the
oracle x workload matrix of :mod:`repro.testing.conformance` along the
scenario and configuration axes and emits the per-cell
``SCENARIOS.json`` artifact the CI ``scenario-matrix`` job gates on
(validated by ``python -m repro.obs validate``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.engine import Engine
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import SCENARIO_SCHEMA_PREFIX
from repro.scenarios import available_scenarios, resolve_scenario
from repro.testing.oracles import (
    DESIGN_POINTS,
    ORACLES,
    ConformanceWorkload,
    OracleReport,
)

SCENARIO_MATRIX_SCHEMA = SCENARIO_SCHEMA_PREFIX + "v1"

# The default scenario axis: all four degenerate regimes plus the
# seeded mixture. "nominal" stays the classic matrix's job.
DEFAULT_MATRIX_SCENARIOS: tuple[str, ...] = (
    "tunnel",
    "loop_closure",
    "aggressive",
    "highway",
    "mixed",
)


def matrix_workloads(
    scenarios: tuple[str, ...] = DEFAULT_MATRIX_SCENARIOS,
    quick: bool = False,
) -> tuple[ConformanceWorkload, ...]:
    """One workload per scenario x design point.

    Scales sit between the classic matrix's "tiny" and "small" shapes
    (``--quick`` shrinks them further for the CI gate); seeds are
    distinct per cell so the design points never see identical draws.
    """
    num_keyframes, num_features, num_windows = (
        (4, 12, 8) if quick else (5, 24, 12)
    )
    workloads = []
    for s_index, scenario in enumerate(scenarios):
        resolve_scenario(scenario)  # fail fast on typos, with did-you-mean
        for d_index, design in enumerate(sorted(DESIGN_POINTS)):
            workloads.append(
                ConformanceWorkload(
                    name=scenario,
                    seed=11 + 17 * s_index + 3 * d_index,
                    num_keyframes=num_keyframes,
                    num_features=num_features,
                    num_windows=num_windows,
                    scenario=scenario,
                    design=design,
                )
            )
    return tuple(workloads)


@dataclass
class ScenarioMatrixRun:
    """All cells of one scenario-matrix run, plus the aggregate verdict."""

    cells: list[tuple[ConformanceWorkload, OracleReport]] = field(
        default_factory=list
    )
    jobs: int = 1
    perturbed: str | None = None

    @property
    def passed(self) -> bool:
        return all(report.passed for _, report in self.cells)

    @property
    def num_mismatches(self) -> int:
        return sum(len(report.mismatches) for _, report in self.cells)

    @property
    def total_checks(self) -> int:
        return sum(report.checks for _, report in self.cells)

    def to_registry(self) -> MetricsRegistry:
        """The run's aggregate counters/gauges/histograms for the
        ``obs`` section of ``SCENARIOS.json``."""
        registry = MetricsRegistry()
        registry.counter(
            "scenario_matrix_cells_total", "cells in the matrix"
        ).inc(len(self.cells))
        registry.counter(
            "scenario_matrix_cells_failed_total", "cells with any mismatch"
        ).inc(sum(0 if report.passed else 1 for _, report in self.cells))
        registry.counter(
            "scenario_matrix_checks_total", "individual conformance checks"
        ).inc(self.total_checks)
        registry.counter(
            "scenario_matrix_mismatches_total", "violated checks"
        ).inc(self.num_mismatches)
        registry.gauge(
            "scenario_matrix_passed", "1 iff every cell passed"
        ).set(1.0 if self.passed else 0.0)
        seconds = registry.histogram("scenario_matrix_cell_seconds")
        for _, report in self.cells:
            seconds.record(report.seconds)
        return registry

    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_MATRIX_SCHEMA,
            "passed": self.passed,
            "checks": self.total_checks,
            "mismatches": self.num_mismatches,
            "jobs": self.jobs,
            "perturbed": self.perturbed,
            "oracles": sorted({report.oracle for _, report in self.cells}),
            "scenarios": sorted({w.scenario for w, _ in self.cells}),
            "design_points": sorted({w.design for w, _ in self.cells}),
            "cells": [
                {
                    "oracle": report.oracle,
                    "scenario": workload.scenario,
                    "design_point": workload.design,
                    "workload": workload.label(),
                    "passed": report.passed,
                    "checks": report.checks,
                    "mismatches": [m.to_dict() for m in report.mismatches],
                    "seconds": report.seconds,
                    "info": report.info,
                }
                for workload, report in self.cells
            ],
            "obs": self.to_registry().as_dict(),
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary_lines(self) -> list[str]:
        lines = []
        for workload, report in self.cells:
            verdict = (
                "ok" if report.passed else f"FAIL ({len(report.mismatches)} mismatches)"
            )
            lines.append(
                f"  {report.oracle:<15} {workload.scenario:<13} "
                f"{workload.design:<9} {report.checks:>3} checks  "
                f"{report.seconds:6.2f}s  {verdict}"
            )
            for mismatch in report.mismatches:
                lines.append(
                    f"      mismatch {mismatch.metric}: expected "
                    f"{mismatch.expected:.6g}, got {mismatch.actual:.6g} "
                    f"(tolerance {mismatch.tolerance:.3g}) {mismatch.detail}"
                )
        verdict = "PASS" if self.passed else "FAIL"
        scenarios = sorted({w.scenario for w, _ in self.cells})
        designs = sorted({w.design for w, _ in self.cells})
        lines.append(
            f"scenario matrix: {verdict} — {self.total_checks} checks, "
            f"{self.num_mismatches} mismatches across {len(self.cells)} cells "
            f"({len(scenarios)} scenarios x {len(designs)} design points x "
            f"{len({r.oracle for _, r in self.cells})} oracles)"
        )
        return lines


def run_scenario_matrix(
    scenarios: tuple[str, ...] | None = None,
    oracle_names: tuple[str, ...] | None = None,
    jobs: int = 1,
    quick: bool = False,
    perturb: str | None = None,
    perturbation: float = 0.05,
    engine: Engine | None = None,
) -> ScenarioMatrixRun:
    """Run every oracle across every scenario x design-point cell.

    Mirrors :func:`repro.testing.conformance.run_conformance` (same
    engine-parallel execution, same ``--perturb`` self-test contract)
    with the workload axis replaced by the scenario x config grid.
    """
    names = tuple(oracle_names) if oracle_names else tuple(ORACLES)
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ConfigurationError(
            f"unknown oracle(s) {unknown}; choose from {sorted(ORACLES)}"
        )
    if perturb is not None and perturb != "all" and perturb not in ORACLES:
        raise ConfigurationError(
            f"unknown --perturb target {perturb!r}; choose from "
            f"{sorted(ORACLES) + ['all']}"
        )
    chosen = tuple(scenarios) if scenarios else DEFAULT_MATRIX_SCENARIOS
    unknown_scenarios = [s for s in chosen if s not in available_scenarios()]
    if unknown_scenarios:
        raise ConfigurationError(
            f"unknown scenario(s) {unknown_scenarios}; choose from "
            f"{available_scenarios()}"
        )
    if engine is None:
        engine = Engine(cache_dir=None, use_disk=False, jobs=jobs)

    workloads = matrix_workloads(chosen, quick=quick)
    grid = [(name, workload) for name in names for workload in workloads]

    def run_cell(
        cell: tuple[str, ConformanceWorkload],
    ) -> tuple[ConformanceWorkload, OracleReport]:
        name, workload = cell
        skew = perturbation if perturb in (name, "all") else 0.0
        return workload, ORACLES[name](workload, perturbation=skew)

    cells = engine.parallel(run_cell, grid)
    return ScenarioMatrixRun(
        cells=list(cells), jobs=engine.jobs, perturbed=perturb
    )
