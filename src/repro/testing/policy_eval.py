"""The learned-controller differential eval (the ``policy-eval`` gate).

Runs every eval profile twice through the serving tier — once with the
2-bit counter + fixed-regime baseline, once with the frozen learned
policy — and demands that the learned controller **Pareto-dominates**
the baseline on the drift-vs-energy plane, per profile:

* strictly less fleet energy;
* windows-weighted mean drift no worse, compared at physical
  measurement resolution (:data:`DRIFT_RESOLUTION_M`, 10 um over
  tens-of-meter trajectories) — warm-started LM early-stopping makes
  individual cap placements differ by micrometers of truncation
  noise, and the counter baseline's exact placement is a hysteresis
  path of the very mechanism the policy bypasses, so demanding
  bit-equality below sensor resolution would gate on replicating the
  bypassed counter rather than on localization quality;
* no more admission sheds and no more deadline misses (the guardrails
  that stop a policy from "improving" drift by refusing to serve);
* zero optimization errors.

Both runs are seeded virtual-time simulations, so the comparison is
exact — no variance, no reruns, and a pass is a property of (profile,
artifact), reproducible anywhere. The report (``POLICY_EVAL.json``,
schema ``repro.policy-eval/v1``) is validated by
``python -m repro.obs validate`` before CI archives it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.serve.loadgen import resolve_profile
from repro.serve.service import LocalizationService

POLICY_EVAL_SCHEMA = "repro.policy-eval/v1"

#: The profiles the gate must dominate on (ISSUE 10 acceptance).
DEFAULT_EVAL_PROFILES = ("smoke", "steady", "overload")

#: Resolution floor for the drift comparison [m]: differences below
#: 10 um are warm-start truncation indeterminacy, not localization
#: quality (drift itself is ~0.05-0.09 m). Energy has no such floor —
#: it is charged deterministically per provisioned iteration.
DRIFT_RESOLUTION_M = 1e-5


def _summarize(metrics: dict) -> dict:
    """The drift-vs-energy coordinates (plus guardrails) of one run."""
    totals = metrics["totals"]
    served = sum(s["windows_served"] for s in metrics["sessions"])
    drift_weighted = sum(
        s["mean_drift_m"] * s["windows_served"] for s in metrics["sessions"]
    )
    return {
        "energy_j": totals["energy_j"],
        "mean_drift_m": drift_weighted / served if served else 0.0,
        "windows_served": int(totals["windows_served"]),
        "windows_shed": int(totals["windows_shed"]),
        "windows_degraded": int(totals["windows_degraded"]),
        "deadline_misses": int(totals["deadline_misses"]),
        "errors": int(totals["errors"]),
    }


def _dominates(baseline: dict, learned: dict) -> tuple[bool, list[str]]:
    """Pareto verdict plus the reasons a profile failed (empty = pass)."""
    reasons = []
    if learned["errors"] != 0:
        reasons.append(f"learned run hit {learned['errors']} errors")
    if not learned["energy_j"] < baseline["energy_j"]:
        reasons.append(
            f"energy not strictly improved "
            f"({learned['energy_j']:.6f} J vs {baseline['energy_j']:.6f} J)"
        )
    if learned["mean_drift_m"] > baseline["mean_drift_m"] + DRIFT_RESOLUTION_M:
        reasons.append(
            f"mean drift regressed beyond the {DRIFT_RESOLUTION_M} m "
            f"resolution floor ({learned['mean_drift_m']:.6f} m vs "
            f"{baseline['mean_drift_m']:.6f} m)"
        )
    if learned["windows_shed"] > baseline["windows_shed"]:
        reasons.append(
            f"sheds regressed ({learned['windows_shed']} vs "
            f"{baseline['windows_shed']})"
        )
    if learned["deadline_misses"] > baseline["deadline_misses"]:
        reasons.append(
            f"deadline misses regressed ({learned['deadline_misses']} vs "
            f"{baseline['deadline_misses']})"
        )
    return not reasons, reasons


@dataclass
class PolicyEvalRun:
    """Outcome of one differential eval: report dict + verdict."""

    report: dict
    passed: bool
    policy_path: Path

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.report, indent=2, sort_keys=True) + "\n")
        return path

    def summary_lines(self) -> list[str]:
        lines = [
            f"policy-eval: {self.report['policy']['name']} "
            f"(digest {self.report['policy']['digest'][:12]}) vs the "
            "counter + fixed-regime baseline",
        ]
        for entry in self.report["profiles"]:
            base, learned = entry["baseline"], entry["learned"]
            verdict = "DOMINATES" if entry["dominates"] else "FAIL"
            lines.append(
                f"  {entry['profile']:<10} {verdict:<9} "
                f"energy {base['energy_j']:.4f} -> {learned['energy_j']:.4f} J  "
                f"drift {base['mean_drift_m']:.6f} -> "
                f"{learned['mean_drift_m']:.6f} m  "
                f"shed {base['windows_shed']} -> {learned['windows_shed']}  "
                f"miss {base['deadline_misses']} -> {learned['deadline_misses']}"
            )
            for reason in entry["reasons"]:
                lines.append(f"      - {reason}")
        lines.append(
            "policy-eval verdict: "
            + ("PASS (dominates on every profile)" if self.passed else "FAIL")
        )
        return lines


def run_policy_eval(
    policy: str = "default",
    profiles: tuple[str, ...] = DEFAULT_EVAL_PROFILES,
    policy_output: str | Path = "POLICY.json",
    engine=None,
) -> PolicyEvalRun:
    """Train/load the policy, freeze it, and run the differential eval.

    ``policy`` is a registered :class:`~repro.runtime.policy.
    PolicyTrainSpec` name (trained through the engine's POLICY stage) or
    a frozen ``*.json`` artifact path. The frozen artifact is always
    (re)written to ``policy_output`` and the learned runs load it from
    there — the eval exercises exactly the file CI archives.
    """
    from repro.runtime.policy import load_policy

    if engine is None:
        from repro.engine import get_engine

        engine = get_engine()

    frozen = load_policy(policy, engine=engine)
    policy_path = frozen.save(policy_output)

    entries = []
    passed = True
    for name in profiles:
        profile = resolve_profile(name)
        started = time.perf_counter()
        base_metrics = LocalizationService(profile, engine=engine).run().metrics
        learned_metrics = (
            LocalizationService(
                replace(profile, policy=str(policy_path)), engine=engine
            )
            .run()
            .metrics
        )
        seconds = time.perf_counter() - started
        baseline, learned = _summarize(base_metrics), _summarize(learned_metrics)
        dominates, reasons = _dominates(baseline, learned)
        passed = passed and dominates
        entries.append(
            {
                "profile": name,
                "baseline": baseline,
                "learned": learned,
                "dominates": dominates,
                "reasons": reasons,
                "seconds": round(seconds, 3),
            }
        )

    report = {
        "schema": POLICY_EVAL_SCHEMA,
        "policy": {
            "name": frozen.name,
            "digest": frozen.digest,
            "source": str(policy),
            "artifact": str(policy_path),
        },
        "profiles": entries,
        "passed": passed,
    }
    return PolicyEvalRun(report=report, passed=passed, policy_path=policy_path)
