"""CLI: ``python -m repro.testing`` — the CI conformance gate.

Runs the full differential-oracle x workload matrix through the
engine's parallel runner, writes the ``CONFORMANCE.json`` artifact, and
exits nonzero on any mismatch. ``--perturb ORACLE`` deliberately skews
that oracle's inputs — the run must then fail, which is the built-in
proof that the gate detects disagreement rather than passing vacuously.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.testing.conformance import (
    DEFAULT_WORKLOADS,
    QUICK_WORKLOADS,
    run_conformance,
)
from repro.testing.oracles import ORACLES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Run the cross-layer differential conformance matrix.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast CI matrix (smaller scales, same four oracles)",
    )
    parser.add_argument(
        "--oracle",
        action="append",
        choices=sorted(ORACLES),
        metavar="NAME",
        help=f"restrict to one oracle (repeatable); choices: {sorted(ORACLES)}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker threads for the matrix (default: 4)",
    )
    parser.add_argument(
        "--output",
        default="CONFORMANCE.json",
        metavar="PATH",
        help="where to write the JSON report (default: CONFORMANCE.json)",
    )
    parser.add_argument(
        "--perturb",
        default=None,
        metavar="ORACLE",
        help="deliberately skew one oracle's inputs ('all' for every "
        "oracle); the run must then fail — a self-test of the gate",
    )
    parser.add_argument(
        "--perturbation",
        type=float,
        default=0.05,
        metavar="EPS",
        help="relative size of the --perturb skew (default: 0.05)",
    )
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    workloads = QUICK_WORKLOADS if args.quick else DEFAULT_WORKLOADS
    try:
        run = run_conformance(
            workloads=workloads,
            oracle_names=tuple(args.oracle) if args.oracle else None,
            jobs=args.jobs,
            perturb=args.perturb,
            perturbation=args.perturbation,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    path = run.write_json(args.output)
    for line in run.summary_lines():
        print(line)
    print(f"report written to {path}")
    return 0 if run.passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
