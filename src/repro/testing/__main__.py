"""CLI: ``python -m repro.testing`` — the CI conformance gate.

Runs the full differential-oracle x workload matrix through the
engine's parallel runner, writes the ``CONFORMANCE.json`` artifact, and
exits nonzero on any mismatch. ``--perturb ORACLE`` deliberately skews
that oracle's inputs — the run must then fail, which is the built-in
proof that the gate detects disagreement rather than passing vacuously.

``--scenarios`` switches the workload axis to the degenerate-regime
grid: every oracle x every scenario x every named design point
(:data:`repro.testing.oracles.DESIGN_POINTS`), written as the per-cell
``SCENARIOS.json`` artifact (validate with
``python -m repro.obs validate SCENARIOS.json``).

``--policy-eval`` runs the learned-controller differential eval
instead: the frozen runtime policy must Pareto-dominate the counter +
fixed-regime baseline on the drift-vs-energy plane for every eval
profile (writes ``POLICY_EVAL.json`` and the frozen ``POLICY.json``).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.testing.conformance import (
    DEFAULT_WORKLOADS,
    QUICK_WORKLOADS,
    run_conformance,
)
from repro.testing.oracles import ORACLES
from repro.testing.scenario_matrix import (
    DEFAULT_MATRIX_SCENARIOS,
    run_scenario_matrix,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Run the cross-layer differential conformance matrix.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast CI matrix (smaller scales, same oracles)",
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help="run the oracle x scenario x design-point matrix instead of "
        "the oracle x workload matrix (writes SCENARIOS.json)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="restrict the --scenarios grid to one scenario (repeatable); "
        f"default: {list(DEFAULT_MATRIX_SCENARIOS)}",
    )
    parser.add_argument(
        "--policy-eval",
        action="store_true",
        help="run the learned-controller differential eval instead of the "
        "conformance matrix (writes POLICY_EVAL.json + POLICY.json)",
    )
    parser.add_argument(
        "--policy",
        default="default",
        metavar="SOURCE",
        help="policy for --policy-eval: a registered PolicyTrainSpec name "
        "(trained through the engine) or a frozen *.json artifact path "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--policy-artifact",
        default="POLICY.json",
        metavar="PATH",
        help="where --policy-eval freezes the policy artifact the learned "
        "runs load (default: %(default)s)",
    )
    parser.add_argument(
        "--oracle",
        action="append",
        choices=sorted(ORACLES),
        metavar="NAME",
        help=f"restrict to one oracle (repeatable); choices: {sorted(ORACLES)}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker threads for the matrix (default: 4)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the JSON report (default: CONFORMANCE.json, "
        "or SCENARIOS.json under --scenarios)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="run through the disk-backed engine artifact cache "
        "(REPRO_CACHE_DIR / .repro_cache) so repeat runs and CI "
        "restores skip recomputation",
    )
    parser.add_argument(
        "--perturb",
        default=None,
        metavar="ORACLE",
        help="deliberately skew one oracle's inputs ('all' for every "
        "oracle); the run must then fail — a self-test of the gate",
    )
    parser.add_argument(
        "--perturbation",
        type=float,
        default=0.05,
        metavar="EPS",
        help="relative size of the --perturb skew (default: 0.05)",
    )
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.scenario and not args.scenarios:
        print("error: --scenario requires --scenarios", file=sys.stderr)
        return 2
    if args.policy_eval and args.scenarios:
        print("error: --policy-eval and --scenarios are exclusive", file=sys.stderr)
        return 2
    engine = None
    if args.cache:
        from repro.engine.engine import Engine

        engine = Engine(use_disk=True, jobs=args.jobs)
    try:
        if args.policy_eval:
            from repro.testing.policy_eval import run_policy_eval

            run = run_policy_eval(
                policy=args.policy,
                policy_output=args.policy_artifact,
                engine=engine,
            )
            output = args.output or "POLICY_EVAL.json"
        elif args.scenarios:
            run = run_scenario_matrix(
                scenarios=tuple(args.scenario) if args.scenario else None,
                oracle_names=tuple(args.oracle) if args.oracle else None,
                jobs=args.jobs,
                quick=args.quick,
                perturb=args.perturb,
                perturbation=args.perturbation,
                engine=engine,
            )
            output = args.output or "SCENARIOS.json"
        else:
            run = run_conformance(
                workloads=QUICK_WORKLOADS if args.quick else DEFAULT_WORKLOADS,
                oracle_names=tuple(args.oracle) if args.oracle else None,
                jobs=args.jobs,
                perturb=args.perturb,
                perturbation=args.perturbation,
                engine=engine,
            )
            output = args.output or "CONFORMANCE.json"
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    path = run.write_json(output)
    for line in run.summary_lines():
        print(line)
    print(f"report written to {path}")
    return 0 if run.passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
