"""Deterministic random-workload builders shared across the test stack.

These are plain-numpy factories (no Hypothesis dependency) for the
objects every conformance check consumes: randomized sliding-window
problems, per-window workload-statistics series, and hardware
configurations. The differential oracles drive them directly from a
seed; :mod:`repro.testing.strategies` wraps them into Hypothesis
strategies; the test suite imports them instead of keeping private
copies per test module.
"""

from __future__ import annotations

import numpy as np

from repro.data.stats import WindowStats
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.geometry.so3 import so3_exp
from repro.hw.config import ND_RANGE, NM_RANGE, S_RANGE, HardwareConfig
from repro.imu.preintegration import ImuPreintegration
from repro.slam.problem import WindowProblem
from repro.slam.residuals import ImuFactor, VisualFactor, make_pose_anchor_prior


def make_random_window(
    seed: int,
    num_keyframes: int = 4,
    num_features: int = 12,
    huber_delta: float | None = None,
    lift_last_keyframe: float = 0.0,
    backend: str = "batched",
    scenario: str | None = None,
) -> WindowProblem:
    """A randomized window with rotated keyframes and noisy pixels.

    ``lift_last_keyframe`` pushes the final keyframe down the optical
    axis so features shallower than the lift land behind its camera —
    the culled-observation regime the boolean mask must reproduce.

    ``scenario`` reshapes the window into a named degenerate regime via
    :func:`repro.scenarios.make_scenario_window` (``None``/``"nominal"``
    keeps the nominal shape and its exact historical RNG draw order).
    """
    if scenario is not None and scenario != "nominal":
        from repro.scenarios import make_scenario_window

        return make_scenario_window(
            scenario,
            seed,
            num_keyframes=num_keyframes,
            num_features=num_features,
            backend=backend,
            huber_delta=huber_delta,
        )
    rng = np.random.default_rng(seed)
    camera = PinholeCamera()
    states: dict[int, NavState] = {}
    for k in range(num_keyframes):
        rotation = so3_exp(rng.normal(scale=0.03, size=3))
        position = np.array([0.45 * k, 0.0, 0.0]) + rng.normal(scale=0.02, size=3)
        if k == num_keyframes - 1:
            position[2] += lift_last_keyframe
        states[k] = NavState(
            pose=SE3(rotation, position),
            velocity=np.array([0.45 / 0.2, 0.0, 0.0]) + rng.normal(scale=0.05, size=3),
        )

    factors: list[VisualFactor] = []
    inv_depths: dict[int, float] = {}
    for fid in range(num_features):
        anchor = int(rng.integers(0, num_keyframes - 1))
        bearing = np.array([rng.uniform(-0.4, 0.4), rng.uniform(-0.3, 0.3), 1.0])
        depth = rng.uniform(2.5, 9.0)
        observed = 0
        for target in range(anchor + 1, num_keyframes):
            pixel = np.array(
                [rng.uniform(0.0, camera.width), rng.uniform(0.0, camera.height)]
            )
            factors.append(
                VisualFactor(
                    fid,
                    anchor,
                    target,
                    bearing,
                    pixel,
                    weight=float(rng.uniform(0.5, 2.0)),
                )
            )
            observed += 1
        if observed:
            inv_depths[fid] = float(1.0 / depth)
    factors = [f for f in factors if f.feature_id in inv_depths]

    imu_factors = []
    for k in range(1, num_keyframes):
        pre = ImuPreintegration()
        for _ in range(40):
            pre.integrate(np.zeros(3), np.array([0.0, 0.0, 9.81]), 0.005, 1e-3, 1e-2)
        imu_factors.append(ImuFactor(k - 1, k, pre))

    return WindowProblem(
        camera=camera,
        states=states,
        inv_depths=inv_depths,
        visual_factors=factors,
        imu_factors=imu_factors,
        priors=[make_pose_anchor_prior(0, states[0])],
        huber_delta=huber_delta,
        backend=backend,
    )


def make_random_stats(
    seed: int,
    max_features: int = 200,
    max_keyframes: int = 12,
) -> WindowStats:
    """One randomized per-window workload-statistics record."""
    rng = np.random.default_rng(seed)
    num_features = int(rng.integers(1, max_features + 1))
    num_keyframes = int(rng.integers(2, max_keyframes + 1))
    avg_obs = float(rng.uniform(2.0, min(8.0, num_keyframes)))
    num_obs = int(round(avg_obs * num_features))
    return WindowStats(
        num_features=num_features,
        avg_observations=avg_obs,
        num_keyframes=num_keyframes,
        num_marginalized=int(rng.integers(0, max(num_features // 4, 1) + 1)),
        num_observations=num_obs,
    )


def make_stats_series(
    seed: int,
    num_windows: int = 16,
    max_features: int = 200,
    max_iterations: int = 6,
    scenario: str | None = None,
) -> list[tuple[WindowStats, int]]:
    """A randomized ``(WindowStats, iterations)`` series for trace replay.

    ``scenario`` shapes the series temporally (droughts decay, loop
    closures spike) via
    :func:`repro.scenarios.make_scenario_stats_series`.
    """
    if scenario is not None and scenario != "nominal":
        from repro.scenarios import make_scenario_stats_series

        return make_scenario_stats_series(
            scenario,
            seed,
            num_windows=num_windows,
            max_features=max_features,
            max_iterations=max_iterations,
        )
    rng = np.random.default_rng(seed)
    series = []
    for index in range(num_windows):
        stats = make_random_stats(seed * 10_007 + index, max_features=max_features)
        series.append((stats, int(rng.integers(1, max_iterations + 1))))
    return series


def make_random_hardware_config(seed: int) -> HardwareConfig:
    """One random point of the (nd, nm, s) design space."""
    rng = np.random.default_rng(seed)
    return HardwareConfig(
        nd=int(rng.integers(ND_RANGE[0], ND_RANGE[1] + 1)),
        nm=int(rng.integers(NM_RANGE[0], NM_RANGE[1] + 1)),
        s=int(rng.integers(S_RANGE[0], S_RANGE[1] + 1)),
    )
