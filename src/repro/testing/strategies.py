"""Shared Hypothesis strategies and the named test profiles.

Test-only module (imports :mod:`hypothesis`, which the library itself
never depends on — keep it out of ``repro.testing.__init__``). The
strategies wrap the deterministic builders of
:mod:`repro.testing.workloads`, so property tests, the differential
oracles, and ad-hoc scripts all draw from the same workload
distributions.

Profiles: ``dev`` (the default) keeps example counts low so the local
suite stays fast; ``ci`` raises ``max_examples`` and derandomizes —
every CI run executes the identical example sequence, so the gate can
never flake on an unlucky draw. Select with ``HYPOTHESIS_PROFILE=ci``
(loaded by ``tests/conftest.py`` via :func:`register_profiles`).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.data.sequences import SequenceConfig
from repro.hw.config import ND_RANGE, NM_RANGE, S_RANGE, HardwareConfig
from repro.scenarios import DEGENERATE_REGIMES, REGIMES, ScenarioSpec, mixture, pure
from repro.synth.spec import DesignSpec
from repro.testing.workloads import (
    make_random_stats,
    make_random_window,
    make_stats_series,
)

DEV_PROFILE = "dev"
CI_PROFILE = "ci"


def register_profiles(default: str | None = None) -> None:
    """Register the named profiles and load one.

    The loaded profile is ``HYPOTHESIS_PROFILE`` when set, else
    ``default``, else ``dev``. Idempotent — safe to call from several
    conftests.
    """
    settings.register_profile(
        DEV_PROFILE,
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        CI_PROFILE,
        max_examples=60,
        deadline=None,
        derandomize=True,  # fixed example sequence: no flaky CI draws
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", default or DEV_PROFILE))


# ----------------------------------------------------------------------
# Scalar building blocks
# ----------------------------------------------------------------------

def seeds(max_value: int = 500) -> st.SearchStrategy[int]:
    """Workload seeds — the one knob every deterministic builder takes."""
    return st.integers(min_value=0, max_value=max_value)


# ----------------------------------------------------------------------
# Windows and workloads
# ----------------------------------------------------------------------

def window_problems(
    max_keyframes: int = 6,
    max_features: int = 24,
    backends: tuple[str, ...] = ("batched",),
) -> st.SearchStrategy:
    """Randomized sliding-window MAP problems."""
    return st.builds(
        make_random_window,
        seed=seeds(),
        num_keyframes=st.integers(min_value=2, max_value=max_keyframes),
        num_features=st.integers(min_value=2, max_value=max_features),
        backend=st.sampled_from(backends),
    )


def window_stats(max_features: int = 200) -> st.SearchStrategy:
    """Randomized per-window workload statistics."""
    return st.builds(make_random_stats, seeds(), max_features=st.just(max_features))


def stats_series(max_windows: int = 24) -> st.SearchStrategy:
    """Randomized (stats, iterations) series for trace replay."""
    return st.builds(
        make_stats_series,
        seed=seeds(),
        num_windows=st.integers(min_value=1, max_value=max_windows),
    )


# ----------------------------------------------------------------------
# Scenario specs
# ----------------------------------------------------------------------

def severities() -> st.SearchStrategy[float]:
    """Scenario severities — the spec's (0, 1] contract."""
    return st.floats(min_value=0.05, max_value=1.0)


def pure_scenarios(
    regimes: tuple[str, ...] = REGIMES,
) -> st.SearchStrategy[ScenarioSpec]:
    """Single-regime specs across every named regime."""
    return st.builds(
        pure,
        regime=st.sampled_from(regimes),
        severity=severities(),
        seed=seeds(),
    )


def mixture_scenarios(
    regimes: tuple[str, ...] = DEGENERATE_REGIMES,
) -> st.SearchStrategy[ScenarioSpec]:
    """Seeded mixtures over 2+ degenerate regimes with random weights."""
    weights = st.dictionaries(
        st.sampled_from(regimes),
        st.floats(min_value=0.1, max_value=5.0),
        min_size=2,
        max_size=len(regimes),
    )
    return st.builds(
        mixture,
        components=weights,
        severity=severities(),
        seed=seeds(),
    )


def scenario_specs() -> st.SearchStrategy[ScenarioSpec]:
    """Any valid scenario spec: pure regimes and seeded mixtures."""
    return st.one_of(pure_scenarios(), mixture_scenarios())


# ----------------------------------------------------------------------
# Hardware and synthesis
# ----------------------------------------------------------------------

def hardware_configs() -> st.SearchStrategy[HardwareConfig]:
    """Any point of the (nd, nm, s) design space."""
    return st.builds(
        HardwareConfig,
        nd=st.integers(min_value=ND_RANGE[0], max_value=ND_RANGE[1]),
        nm=st.integers(min_value=NM_RANGE[0], max_value=NM_RANGE[1]),
        s=st.integers(min_value=S_RANGE[0], max_value=S_RANGE[1]),
    )


def design_specs(
    min_budget_ms: float = 18.0,
    max_budget_ms: float = 120.0,
    min_resource_budget: float = 0.5,
) -> st.SearchStrategy[DesignSpec]:
    """Feasible-ish synthesis constraints (the optimizer-contract range)."""
    return st.builds(
        DesignSpec,
        latency_budget_s=st.floats(
            min_value=min_budget_ms / 1e3, max_value=max_budget_ms / 1e3
        ),
        resource_budget=st.floats(min_value=min_resource_budget, max_value=1.0),
    )


# ----------------------------------------------------------------------
# Portfolio forecasts and specs
# ----------------------------------------------------------------------

def traffic_forecasts(
    max_components: int = 3,
) -> st.SearchStrategy:
    """Randomized traffic forecasts over the named scenarios.

    Component weights draw from a wide positive range so the
    normalization property (weights sum to 1 after
    :meth:`~repro.portfolio.TrafficForecast.normalized_weights`) is
    exercised far from the already-normalized fixed point.
    """
    from repro.portfolio import forecast

    scenario_names = tuple(REGIMES) + ("mixed",)
    components = st.dictionaries(
        st.sampled_from(scenario_names),
        st.floats(min_value=0.05, max_value=20.0),
        min_size=1,
        max_size=max_components,
    )
    return st.builds(
        forecast,
        components,
        name=st.just("prop"),
        num_sessions=st.integers(min_value=1, max_value=16),
        rate_hz=st.floats(min_value=0.5, max_value=20.0),
        seed=seeds(),
    )


def portfolio_specs(
    max_instances: int = 4,
) -> st.SearchStrategy:
    """Randomized solvable portfolio specs (small, CI-sized fleets)."""
    from repro.portfolio import PortfolioObjective, PortfolioSpec, default_candidates

    return st.builds(
        PortfolioSpec,
        forecast=traffic_forecasts(),
        candidates=st.just(default_candidates()),
        num_instances=st.integers(min_value=1, max_value=max_instances),
        max_configs=st.integers(min_value=1, max_value=max_instances),
        objective=st.sampled_from(PortfolioObjective),
        latency_slo_s=st.floats(min_value=0.02, max_value=0.2),
        sizing_windows=st.just(8),
        max_features=st.just(120),
    )


# ----------------------------------------------------------------------
# Trajectories / sequences
# ----------------------------------------------------------------------

def sequence_configs(
    max_duration: float = 6.0,
) -> st.SearchStrategy[SequenceConfig]:
    """Short randomized trajectory recordings (drone and car)."""
    return st.builds(
        SequenceConfig,
        name=st.just("prop"),
        kind=st.sampled_from(("drone", "car")),
        seed=seeds(),
        duration=st.floats(min_value=2.0, max_value=max_duration),
        motion_scale=st.floats(min_value=0.3, max_value=1.3),
    )
