"""The conformance matrix: every oracle across every workload scale.

The matrix is embarrassingly parallel, so it runs through the execution
engine's worker pool (:meth:`repro.engine.Engine.parallel`); results are
deterministic at any worker count. The aggregate is serializable to the
``CONFORMANCE.json`` artifact the CI gate publishes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.engine import Engine
from repro.errors import ConfigurationError
from repro.testing.oracles import ORACLES, ConformanceWorkload, OracleReport

# The standard scales. "tiny" exercises the degenerate-adjacent small
# regime, "small" the typical unit-test size, "fig11" approaches the
# paper's Fig. 11 window shape (hundreds of features, a full window of
# keyframes).
DEFAULT_WORKLOADS: tuple[ConformanceWorkload, ...] = (
    ConformanceWorkload("tiny", seed=7, num_keyframes=3, num_features=6, num_windows=6),
    ConformanceWorkload("small", seed=21, num_keyframes=5, num_features=24, num_windows=12),
    ConformanceWorkload("fig11", seed=42, num_keyframes=10, num_features=120, num_windows=24),
)

# The CI --quick matrix trades the fig11 scale for a second small-shape
# seed so the gate stays fast while still covering three scales.
QUICK_WORKLOADS: tuple[ConformanceWorkload, ...] = (
    ConformanceWorkload("tiny", seed=7, num_keyframes=3, num_features=6, num_windows=6),
    ConformanceWorkload("small", seed=21, num_keyframes=5, num_features=24, num_windows=12),
    ConformanceWorkload("medium", seed=33, num_keyframes=7, num_features=48, num_windows=12),
)


@dataclass
class ConformanceRun:
    """All reports of one matrix run, plus the aggregate verdict."""

    reports: list[OracleReport] = field(default_factory=list)
    jobs: int = 1
    perturbed: str | None = None

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    @property
    def num_mismatches(self) -> int:
        return sum(len(report.mismatches) for report in self.reports)

    @property
    def total_checks(self) -> int:
        return sum(report.checks for report in self.reports)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "checks": self.total_checks,
            "mismatches": self.num_mismatches,
            "jobs": self.jobs,
            "perturbed": self.perturbed,
            "oracles": sorted({report.oracle for report in self.reports}),
            "workloads": sorted({report.workload for report in self.reports}),
            "reports": [report.to_dict() for report in self.reports],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary_lines(self) -> list[str]:
        lines = []
        for report in self.reports:
            verdict = "ok" if report.passed else f"FAIL ({len(report.mismatches)} mismatches)"
            lines.append(
                f"  {report.oracle:<11} {report.workload:<55} "
                f"{report.checks:>3} checks  {report.seconds:6.2f}s  {verdict}"
            )
            for mismatch in report.mismatches:
                lines.append(
                    f"      mismatch {mismatch.metric}: expected {mismatch.expected:.6g}, "
                    f"got {mismatch.actual:.6g} (tolerance {mismatch.tolerance:.3g}) "
                    f"{mismatch.detail}"
                )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"conformance: {verdict} — {self.total_checks} checks, "
            f"{self.num_mismatches} mismatches across {len(self.reports)} oracle runs"
        )
        return lines


def run_conformance(
    workloads: tuple[ConformanceWorkload, ...] = DEFAULT_WORKLOADS,
    oracle_names: tuple[str, ...] | None = None,
    jobs: int = 1,
    perturb: str | None = None,
    perturbation: float = 0.05,
    engine: Engine | None = None,
) -> ConformanceRun:
    """Run the oracle x workload matrix and collect every report.

    Args:
        workloads: the scales to cover.
        oracle_names: subset of :data:`repro.testing.oracles.ORACLES`
            (default: all four).
        jobs: worker threads for the engine's parallel runner.
        perturb: name of one oracle (or ``"all"``) whose inputs are
            deliberately skewed by ``perturbation`` — the matrix must
            then FAIL, which is how the oracles prove they detect
            disagreement.
        engine: an existing engine to run on (its ``jobs`` wins).
    """
    names = tuple(oracle_names) if oracle_names else tuple(ORACLES)
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ConfigurationError(
            f"unknown oracle(s) {unknown}; choose from {sorted(ORACLES)}"
        )
    if perturb is not None and perturb != "all" and perturb not in ORACLES:
        raise ConfigurationError(
            f"unknown --perturb target {perturb!r}; choose from "
            f"{sorted(ORACLES) + ['all']}"
        )
    if engine is None:
        # The matrix needs only the worker pool — oracle runs are cheap
        # and never worth a disk artifact.
        engine = Engine(cache_dir=None, use_disk=False, jobs=jobs)

    cells = [(name, workload) for name in names for workload in workloads]

    def run_cell(cell: tuple[str, ConformanceWorkload]) -> OracleReport:
        name, workload = cell
        skew = perturbation if perturb in (name, "all") else 0.0
        return ORACLES[name](workload, perturbation=skew)

    reports = engine.parallel(run_cell, cells)
    return ConformanceRun(reports=list(reports), jobs=engine.jobs, perturbed=perturb)
