"""Cross-layer differential conformance and fault-injection subsystem.

Archytas's correctness story is a chain of agreements: the batched
estimator backend agrees with the per-factor loop, the functional
accelerator datapath agrees with the software solver, the cycle-level
trace simulation agrees with the analytical latency models, and the
fixed-point datapath agrees with float64 up to its Q-format resolution.
This package makes each link a first-class, runnable *oracle*:

* :mod:`repro.testing.workloads` — deterministic random-workload
  builders (windows, stats series, hardware configs) shared by the
  oracles, the Hypothesis strategies, and the test suite;
* :mod:`repro.testing.oracles` — the differential runners with typed
  mismatch reports (backend, functional, trace, fixedpoint, plus the
  SolverPlan-vs-dense and mixed-precision solve oracles);
* :mod:`repro.testing.faults` — deterministic fault injectors (NaN
  tracks, IMU gaps, degenerate windows, corrupted cache blobs);
* :mod:`repro.testing.conformance` — the oracle x workload matrix,
  run through the engine's parallel runner, serialized to
  ``CONFORMANCE.json``;
* ``python -m repro.testing`` — the CI-gating conformance CLI.

:mod:`repro.testing.strategies` (shared Hypothesis strategies and the
named test profiles) is deliberately *not* imported here: Hypothesis is
a test-only dependency and the conformance CLI must run without it.
"""

from repro.testing.conformance import (
    ConformanceRun,
    ConformanceWorkload,
    DEFAULT_WORKLOADS,
    QUICK_WORKLOADS,
    run_conformance,
)
from repro.testing.oracles import (
    Mismatch,
    ORACLES,
    OracleReport,
    run_backend_oracle,
    run_fixedpoint_oracle,
    run_functional_oracle,
    run_mixed_precision_oracle,
    run_plan_oracle,
    run_trace_oracle,
)

__all__ = [
    "ConformanceRun",
    "ConformanceWorkload",
    "DEFAULT_WORKLOADS",
    "QUICK_WORKLOADS",
    "Mismatch",
    "ORACLES",
    "OracleReport",
    "run_backend_oracle",
    "run_fixedpoint_oracle",
    "run_functional_oracle",
    "run_mixed_precision_oracle",
    "run_plan_oracle",
    "run_trace_oracle",
    "run_conformance",
]
