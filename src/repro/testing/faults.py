"""Deterministic fault injectors for graceful-degradation testing.

Production localization pipelines meet broken inputs constantly: dead
tracker outputs (NaN pixels), dropped feature tracks, IMU gaps,
geometrically degenerate windows, and corrupted on-disk artifacts. Each
injector here produces a *deterministically* faulted copy of its input
(the original is never mutated — sequences may be shared through the
engine memo), and :func:`graceful_outcome` classifies how the system
responds: the contract is that every layer either recovers or raises a
typed :class:`repro.errors.ReproError` — never an unhandled
``IndexError``/``LinAlgError``/``BadZipFile`` from deep inside a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.data.sequences import ImuSegment, Sequence
from repro.data.tracks import FrameObservations
from repro.errors import ConfigurationError, ReproError
from repro.slam.problem import WindowProblem

CACHE_CORRUPTION_MODES = ("truncate", "garbage", "empty")


# ----------------------------------------------------------------------
# Sequence-level injectors
# ----------------------------------------------------------------------

def _copy_observations(sequence: Sequence) -> list[FrameObservations]:
    return [
        FrameObservations(
            frame_id=obs.frame_id,
            pixels={fid: pixel.copy() for fid, pixel in obs.pixels.items()},
        )
        for obs in sequence.observations
    ]


def inject_nan_tracks(
    sequence: Sequence, fraction: float = 0.2, seed: int = 0
) -> Sequence:
    """Replace a fraction of pixel observations with NaN (dead tracker).

    Every faulted pixel becomes ``[nan, nan]``; which observations are
    hit is a deterministic function of ``seed``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    observations = _copy_observations(sequence)
    for obs in observations:
        for fid in sorted(obs.pixels):
            if rng.uniform() < fraction:
                obs.pixels[fid] = np.array([np.nan, np.nan])
    return replace(sequence, observations=observations)


def inject_track_dropout(
    sequence: Sequence, fraction: float = 0.5, seed: int = 0
) -> Sequence:
    """Delete a fraction of pixel observations (lost tracks)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    observations = _copy_observations(sequence)
    for obs in observations:
        for fid in sorted(obs.pixels):
            if rng.uniform() < fraction:
                del obs.pixels[fid]
    return replace(sequence, observations=observations)


def inject_imu_gap(sequence: Sequence, segment_index: int = 0) -> Sequence:
    """Empty one keyframe interval's IMU samples (sensor dropout).

    The estimator's contract is to surface this as a typed
    :class:`repro.errors.DataError` naming the gap, not to dead-reckon
    through a zero-length preintegration.
    """
    if not 0 <= segment_index < len(sequence.imu_segments):
        raise ConfigurationError(
            f"segment_index must be in [0, {len(sequence.imu_segments)}), "
            f"got {segment_index}"
        )
    segments = list(sequence.imu_segments)
    victim = segments[segment_index]
    segments[segment_index] = ImuSegment(
        timestamps=np.empty(0),
        gyro=np.empty((0, 3)),
        accel=np.empty((0, 3)),
        dt=victim.dt,
    )
    return replace(sequence, imu_segments=segments)


# ----------------------------------------------------------------------
# Window-level injector
# ----------------------------------------------------------------------

def make_degenerate_window(
    seed: int = 0, num_keyframes: int = 3, num_features: int = 8
) -> WindowProblem:
    """A rank-deficient window: zero baseline, one observation per track.

    All keyframes sit at the identical pose, so no visual factor carries
    depth information and the unregularized normal equations are
    singular — the regime LM damping (and the typed
    :class:`repro.errors.SolverError` on the undamped path) must absorb.

    This is the zero-baseline limit of the ``tunnel`` regime's feature
    drought; the single generator lives in
    :func:`repro.scenarios.make_drought_window` and this wrapper pins
    its historical defaults (draw-for-draw identical output).
    """
    from repro.scenarios import make_drought_window

    return make_drought_window(
        seed=seed, num_keyframes=num_keyframes, num_features=num_features
    )


# ----------------------------------------------------------------------
# Artifact-cache injector
# ----------------------------------------------------------------------

def corrupt_cache_artifacts(
    cache_dir: str | Path, mode: str = "truncate", seed: int = 0
) -> int:
    """Corrupt every ``.npz`` blob under a cache directory.

    Modes: ``truncate`` keeps the first half of each blob (a killed
    writer without the atomic rename), ``garbage`` overwrites with
    deterministic random bytes, ``empty`` leaves zero-byte files.
    Returns the number of blobs corrupted. The engine's contract is to
    treat every such blob as a cache miss and recompute.
    """
    if mode not in CACHE_CORRUPTION_MODES:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; choose from {CACHE_CORRUPTION_MODES}"
        )
    rng = np.random.default_rng(seed)
    corrupted = 0
    for path in sorted(Path(cache_dir).rglob("*.npz")):
        data = path.read_bytes()
        if mode == "truncate":
            path.write_bytes(data[: len(data) // 2])
        elif mode == "garbage":
            path.write_bytes(rng.integers(0, 256, size=max(len(data), 16), dtype=np.uint8).tobytes())
        else:
            path.write_bytes(b"")
        corrupted += 1
    return corrupted


# ----------------------------------------------------------------------
# Outcome classification
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GracefulOutcome:
    """How a faulted computation ended: recovery or a typed error."""

    recovered: bool
    result: object = None
    error: ReproError | None = None


def graceful_outcome(fn: Callable[[], object]) -> GracefulOutcome:
    """Run a faulted computation and classify the ending.

    Returns a :class:`GracefulOutcome` when ``fn`` either completes or
    raises a typed :class:`repro.errors.ReproError`. Any other exception
    (the library crashing on the fault) propagates to the caller — that
    is precisely the failure the degradation tests exist to catch.
    """
    try:
        return GracefulOutcome(recovered=True, result=fn())
    except ReproError as error:
        return GracefulOutcome(recovered=False, error=error)
