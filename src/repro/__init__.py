"""Archytas reproduction: accelerator synthesis for robotic localization.

The public API mirrors the paper's pipeline (Fig. 1):

* describe constraints with :class:`repro.DesignSpec` and call
  :func:`repro.synthesize` to obtain a concrete accelerator design;
* run the localization algorithm itself with
  :class:`repro.SlidingWindowEstimator` over synthetic sequences from
  :func:`repro.make_euroc_sequence` / :func:`repro.make_kitti_sequence`;
* attach the run-time optimizer via :class:`repro.RuntimeController`;
* regenerate any of the paper's results through
  :mod:`repro.experiments`.

See README.md for a guided tour and DESIGN.md for the system inventory.
"""

from repro.data import (
    SequenceConfig,
    make_euroc_sequence,
    make_kitti_sequence,
    make_sequence,
)
from repro.data.stats import WindowStats
from repro.hw import HardwareConfig, ZC706, KINTEX7_160T, VIRTEX7_690T
from repro.runtime import IterationTable, RuntimeController, build_reconfiguration_table
from repro.slam import (
    EstimatorConfig,
    SlidingWindowEstimator,
    absolute_trajectory_error,
)
from repro.synth import (
    DesignSpec,
    Objective,
    SynthesisResult,
    biggest_fit_design,
    high_perf_design,
    low_power_design,
    pareto_frontier,
    synthesize,
)

__version__ = "1.0.0"

__all__ = [
    "SequenceConfig",
    "make_euroc_sequence",
    "make_kitti_sequence",
    "make_sequence",
    "WindowStats",
    "HardwareConfig",
    "ZC706",
    "KINTEX7_160T",
    "VIRTEX7_690T",
    "IterationTable",
    "RuntimeController",
    "build_reconfiguration_table",
    "EstimatorConfig",
    "SlidingWindowEstimator",
    "absolute_trajectory_error",
    "DesignSpec",
    "Objective",
    "SynthesisResult",
    "biggest_fit_design",
    "high_perf_design",
    "low_power_design",
    "pareto_frontier",
    "synthesize",
    "__version__",
]
