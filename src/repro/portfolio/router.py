"""Config-aware routing: pick the instance with the least marginal cost.

The FIFO pool dispatcher treats instances as interchangeable — correct
for a homogeneous fleet, wasteful for a portfolio where a tunnel window
is cheap on the small config and a loop-closure spike needs the big one.
The marginal-cost router assigns each window to the instance minimizing
its *marginal virtual completion time* (queue-ahead plus this window's
service time on that instance's config), breaking ties toward the
lower-energy instance and then the lowest index.

All comparisons are exact float comparisons, deliberately without the
synth tie band: the router must agree bit-for-bit with the brute-force
oracle (:func:`brute_force_choice`), and the inputs are deterministic
virtual-time quantities, not independently-derived model scores.
"""

from __future__ import annotations

from repro.hw.config import HardwareConfig


def choose_instance(
    now: float,
    free_at: list[float],
    service_s: list[float],
    energy_j: list[float],
) -> int:
    """The marginal-cost routing decision for one window.

    Args:
        now: current virtual time (the window is ready).
        free_at: per-instance time the instance finishes its queue.
        service_s: per-instance service time of *this* window on that
            instance's config.
        energy_j: per-instance energy of this window on that config.

    Returns the index minimizing ``(completion, energy, index)``
    lexicographically, where ``completion = max(now, free_at) +
    service_s``.
    """
    best = 0
    best_key = (max(now, free_at[0]) + service_s[0], energy_j[0], 0)
    for index in range(1, len(free_at)):
        key = (max(now, free_at[index]) + service_s[index], energy_j[index], index)
        if key < best_key:
            best, best_key = index, key
    return best


def brute_force_choice(
    now: float,
    free_at: list[float],
    service_s: list[float],
    energy_j: list[float],
) -> int:
    """Independent oracle for :func:`choose_instance`.

    Materializes every assignment's outcome tuple and sorts — a
    different code path arriving at the same total order, used by the
    conformance harness to pin the router exactly.
    """
    outcomes = sorted(
        (max(now, free_at[i]) + service_s[i], energy_j[i], i)
        for i in range(len(free_at))
    )
    return outcomes[0][2]


def drift_candidate(
    current: HardwareConfig,
    portfolio: tuple[HardwareConfig, ...],
    service_by_config: dict[str, float],
    improvement_margin: float,
) -> HardwareConfig | None:
    """The portfolio config this batch would rather have run on, if any.

    Compares the batch's total service time on the instance's current
    config against every other portfolio config; returns the best
    alternative only when it beats the current config by more than the
    margin (relative), else ``None``. Deterministic: candidates are
    scanned in sorted-config order, strict improvement required.
    """
    current_s = service_by_config[current.label]
    best: HardwareConfig | None = None
    best_s = current_s * (1.0 - improvement_margin)
    for config in sorted(set(portfolio), key=HardwareConfig.as_tuple):
        if config == current:
            continue
        candidate_s = service_by_config[config.label]
        if candidate_s < best_s:
            best, best_s = config, candidate_s
    return best
