"""Partial-reconfiguration cost model for cross-config instance swaps.

:class:`repro.runtime.reconfig.ReconfigurationTable` models *clock
gating* inside one static design — free, because no bitstream changes.
Moving an instance between two *portfolio* configs is different: the
fabric regions holding the resized blocks must be partially
reprogrammed, which costs real time (the instance is offline) and
energy (configuration-port power). The serve event loop charges both in
virtual time when the router decides an instance should swap.

The model is linear in the "reconfiguration distance" between the two
configs — the number of customized units that change — mirroring how
partial-bitstream size scales with the reconfigured region on Zynq-class
parts (the CICC 2022 follow-up's PCAP numbers motivate the defaults:
low-millisecond swaps, tens of millijoules).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig


@dataclass(frozen=True)
class ReconfigCharge:
    """The virtual-time cost of one config swap."""

    seconds: float
    joules: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.joules < 0:
            raise ConfigurationError("reconfiguration charges must be >= 0")


def reconfig_distance(a: HardwareConfig, b: HardwareConfig) -> int:
    """Units that must be reprogrammed to turn config ``a`` into ``b``.

    Each MAC in the Schur blocks is one unit; Cholesky Update units are
    grouped eight to a reconfigurable region (they are far smaller).
    """
    return abs(a.nd - b.nd) + abs(a.nm - b.nm) + ceil(abs(a.s - b.s) / 8)


@dataclass(frozen=True)
class PartialReconfigModel:
    """Linear swap-cost model: base + per-unit time and energy.

    Attributes:
        base_seconds / base_joules: fixed cost of any swap (bitstream
            setup, configuration-port handshake).
        seconds_per_unit / joules_per_unit: marginal cost per
            reconfigured unit (see :func:`reconfig_distance`).
        improvement_margin: relative service-time improvement another
            portfolio config must show, sustained, before the router
            considers a swap worth its cost.
    """

    base_seconds: float = 0.002
    seconds_per_unit: float = 0.0004
    base_joules: float = 0.02
    joules_per_unit: float = 0.005
    improvement_margin: float = 0.05

    def __post_init__(self) -> None:
        for name, value in (
            ("base_seconds", self.base_seconds),
            ("seconds_per_unit", self.seconds_per_unit),
            ("base_joules", self.base_joules),
            ("joules_per_unit", self.joules_per_unit),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if not 0 <= self.improvement_margin < 1:
            raise ConfigurationError(
                f"improvement_margin must be in [0, 1), "
                f"got {self.improvement_margin}"
            )

    def swap_cost(self, a: HardwareConfig, b: HardwareConfig) -> ReconfigCharge:
        """Time and energy to swap an instance from ``a`` to ``b``.

        Zero when the configs are equal — swapping to yourself is a
        no-op, and the serve tier relies on that identity.
        """
        if a == b:
            return ReconfigCharge(0.0, 0.0)
        units = reconfig_distance(a, b)
        return ReconfigCharge(
            seconds=self.base_seconds + self.seconds_per_unit * units,
            joules=self.base_joules + self.joules_per_unit * units,
        )


DEFAULT_RECONFIG_MODEL = PartialReconfigModel()


def build_portfolio_reconfig_table(
    configs: tuple[HardwareConfig, ...],
    model: PartialReconfigModel = DEFAULT_RECONFIG_MODEL,
) -> dict[tuple[str, str], ReconfigCharge]:
    """Pairwise swap costs for a portfolio, keyed by (from, to) labels.

    The table is symmetric in cost but keyed directionally, mirroring
    how :class:`~repro.runtime.reconfig.ReconfigurationTable` is indexed
    at dispatch time.
    """
    unique: dict[str, HardwareConfig] = {c.label: c for c in configs}
    table: dict[tuple[str, str], ReconfigCharge] = {}
    for src_label, src in sorted(unique.items()):
        for dst_label, dst in sorted(unique.items()):
            table[(src_label, dst_label)] = model.swap_cost(src, dst)
    return table
