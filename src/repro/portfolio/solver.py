"""The portfolio solver: from a traffic forecast to a fleet allocation.

``solve_portfolio`` runs in two stages, both exact and deterministic:

1. **Candidate synthesis.** Every candidate :class:`DesignSpec` is
   re-targeted at every regime's sizing workload
   (:func:`regime_design_spec`) and solved with the existing
   :func:`repro.synth.exhaustive_search` — the portfolio only ever mixes
   configs that are themselves optimal for *some* (budget, regime) pair,
   which keeps the candidate set tiny (#candidates x #regimes upper
   bound) without giving up optimality over the grid the spec describes.

2. **Allocation.** A small integer program solved by pruned
   enumeration: choose up to ``max_configs`` distinct configs and split
   ``num_instances`` among them, assigning each regime to its best
   config in the chosen subset. Scores are compared inside the same
   ``1e-12`` relative band the synthesizer uses, with the same
   smallest-tiebreak-then-lexicographic-first resolution, so the result
   is independent of enumeration incidentals and bit-stable across
   platforms.

When the forecast is a pure regime and the spec admits one config, the
solve reduces *exactly* to single-config synthesis: the portfolio's only
entry is ``minimize_power(regime_design_spec(candidate, demand)).config``
(or ``minimize_latency`` for a LATENCY-objective candidate). A pinned
differential test holds this equality.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from time import perf_counter

from repro.errors import InfeasibleDesignError
from repro.hw.config import HardwareConfig
from repro.hw.latency import window_latency_seconds
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.portfolio.spec import (
    PortfolioObjective,
    PortfolioSpec,
    RegimeDemand,
    regime_demands,
)
from repro.synth.optimizer import exhaustive_search
from repro.synth.spec import DesignSpec

# The synthesizer's relative tie band (see repro.synth.optimizer): two
# allocation scores within this band are treated as tied and resolved by
# tiebreak metric, then lexicographically. Kept numerically identical so
# portfolio ties behave like synthesis ties.
_TIE_RTOL = 1e-12


def _close(a: float, b: float) -> bool:
    """True when two non-negative scores fall inside the tie band."""
    return abs(a - b) <= _TIE_RTOL * max(abs(a), abs(b))


def regime_design_spec(candidate: DesignSpec, demand: RegimeDemand) -> DesignSpec:
    """A candidate spec re-targeted at one regime's sizing workload.

    Only the workload and iteration count change; the latency budget,
    platform, resource budget and objective stay the candidate's. This
    is the exact spec the pinned single-config differential test feeds
    to ``minimize_power`` / ``minimize_latency``.
    """
    return replace(candidate, workload=demand.stats, iterations=demand.iterations)


@dataclass(frozen=True)
class PortfolioEntry:
    """One config in the solved portfolio and its share of the fleet."""

    config: HardwareConfig
    count: int
    power_w: float  # per-instance provisioned power
    utilization: float  # offered work / capacity of this config group
    assigned_regimes: tuple[str, ...]

    @property
    def config_id(self) -> str:
        return self.config.label

    def as_dict(self) -> dict:
        return {
            "config_id": self.config_id,
            "nd": self.config.nd,
            "nm": self.config.nm,
            "s": self.config.s,
            "count": self.count,
            "power_w": self.power_w,
            "utilization": self.utilization,
            "assigned_regimes": list(self.assigned_regimes),
        }


@dataclass(frozen=True)
class PortfolioSolution:
    """The solved fleet: configs, counts, and the regime assignment.

    ``as_dict`` deliberately excludes the timing / enumeration counters
    (``solve_seconds``, ``evaluated_*``) so the dict can embed in
    byte-identical serve metrics exports.
    """

    forecast_name: str
    objective: PortfolioObjective
    entries: tuple[PortfolioEntry, ...]
    assignment: tuple[tuple[str, str], ...]  # (regime, config_id)
    expected_energy_per_window_j: float
    expected_latency_s: float
    provisioned_power_w: float
    slo_met: bool
    evaluated_allocations: int
    evaluated_points: int
    solve_seconds: float

    @property
    def num_instances(self) -> int:
        return sum(entry.count for entry in self.entries)

    @property
    def num_configs(self) -> int:
        return len(self.entries)

    def instance_configs(self) -> tuple[HardwareConfig, ...]:
        """Per-instance configs in deterministic (entry-order) expansion."""
        configs: list[HardwareConfig] = []
        for entry in self.entries:
            configs.extend([entry.config] * entry.count)
        return tuple(configs)

    def config_for_regime(self, regime: str) -> HardwareConfig:
        for assigned_regime, config_id in self.assignment:
            if assigned_regime == regime:
                for entry in self.entries:
                    if entry.config_id == config_id:
                        return entry.config
        raise KeyError(f"regime {regime!r} not in portfolio assignment")

    def as_dict(self) -> dict:
        return {
            "name": self.forecast_name,
            "objective": self.objective.value,
            "entries": [entry.as_dict() for entry in self.entries],
            "assignment": {regime: cid for regime, cid in self.assignment},
            "expected_energy_per_window_j": self.expected_energy_per_window_j,
            "expected_latency_s": self.expected_latency_s,
            "provisioned_power_w": self.provisioned_power_w,
            "slo_met": self.slo_met,
        }

    def render(self) -> str:
        lines = [
            f"portfolio for forecast {self.forecast_name!r} "
            f"(objective={self.objective.value})",
            f"  {'config':<16} {'count':>5} {'power/inst':>11} "
            f"{'util':>6}  regimes",
        ]
        for entry in self.entries:
            lines.append(
                f"  {entry.config_id:<16} {entry.count:>5} "
                f"{entry.power_w:>9.2f} W {entry.utilization:>6.2f}  "
                f"{', '.join(entry.assigned_regimes) or '-'}"
            )
        lines.append(
            f"  expected: {self.expected_latency_s * 1e3:.2f} ms/window, "
            f"{self.expected_energy_per_window_j * 1e3:.2f} mJ/window, "
            f"{self.provisioned_power_w:.2f} W provisioned, "
            f"SLO {'met' if self.slo_met else 'MISSED'}"
        )
        return "\n".join(lines)


def _compositions(total: int, parts: int) -> list[tuple[int, ...]]:
    """All ways to write ``total`` as ``parts`` positive integers, in
    lexicographic order."""
    if parts == 1:
        return [(total,)]
    out = []
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            out.append((first, *rest))
    return out


def _assign_regimes(
    configs: tuple[HardwareConfig, ...],
    demands: tuple[RegimeDemand, ...],
    service: dict[tuple[str, str], float],
    energy: dict[tuple[str, str], float],
    spec: PortfolioSpec,
) -> tuple[dict[str, HardwareConfig], float, bool]:
    """Each regime's best config within a subset, count-independent.

    Returns (assignment, mix score, slo met). The per-regime choice
    minimizes energy subject to the latency SLO (ENERGY objective) or
    service time outright (LATENCY objective), resolving ties inside the
    synth band by the opposite metric and then lexicographically —
    regimes that no config can serve inside the SLO fall back to the
    fastest config and mark the solution SLO-missed.
    """
    assignment: dict[str, HardwareConfig] = {}
    score = 0.0
    slo_met = True
    for demand in demands:
        best: HardwareConfig | None = None
        best_primary = best_secondary = float("inf")
        feasible_exists = any(
            service[(c.label, demand.regime)] <= spec.latency_slo_s for c in configs
        )
        if not feasible_exists:
            slo_met = False
        for config in configs:  # configs pre-sorted -> lex-first on ties
            s = service[(config.label, demand.regime)]
            e = energy[(config.label, demand.regime)]
            if spec.objective is PortfolioObjective.ENERGY:
                if feasible_exists and s > spec.latency_slo_s:
                    continue
                primary, secondary = (e, s) if feasible_exists else (s, e)
            else:
                primary, secondary = s, e
            if best is None or (
                not _close(primary, best_primary) and primary < best_primary
            ):
                best, best_primary, best_secondary = config, primary, secondary
            elif _close(primary, best_primary) and (
                not _close(secondary, best_secondary)
                and secondary < best_secondary
            ):
                best, best_primary, best_secondary = config, primary, secondary
        assert best is not None
        assignment[demand.regime] = best
        metric = (
            energy[(best.label, demand.regime)]
            if spec.objective is PortfolioObjective.ENERGY
            else service[(best.label, demand.regime)]
        )
        score += demand.weight * metric
    return assignment, score, slo_met


def solve_portfolio(
    spec: PortfolioSpec, power_model: PowerModel = DEFAULT_POWER_MODEL
) -> PortfolioSolution:
    """Solve the fleet portfolio for a traffic forecast.

    Raises :class:`InfeasibleDesignError` only when *no* candidate spec
    synthesizes for *any* regime; capacity overload and SLO misses are
    soft (reported through ``utilization`` / ``slo_met``) because a
    fixed instance budget must always yield a deployable fleet.
    """
    tic = perf_counter()
    demands = regime_demands(
        spec.forecast,
        num_windows=spec.sizing_windows,
        max_features=spec.max_features,
    )
    platform = spec.candidates[0].platform

    # Stage 1: per-(candidate, regime) synthesis -> deduped config pool.
    evaluated_points = 0
    pool: set[HardwareConfig] = set()
    for candidate in spec.candidates:
        for demand in demands:
            try:
                outcome = exhaustive_search(
                    regime_design_spec(candidate, demand), power_model=power_model
                )
            except InfeasibleDesignError:
                continue
            evaluated_points += outcome.evaluated_points
            pool.add(outcome.config)
    if not pool:
        raise InfeasibleDesignError(
            f"no candidate spec synthesizes for any regime of forecast "
            f"{spec.forecast.name!r}"
        )
    configs = tuple(sorted(pool, key=HardwareConfig.as_tuple))

    # Per-(config, regime) service time and energy on the sizing workload.
    service: dict[tuple[str, str], float] = {}
    energy: dict[tuple[str, str], float] = {}
    for config in configs:
        for demand in demands:
            seconds = window_latency_seconds(
                demand.stats, config, demand.iterations, platform
            )
            service[(config.label, demand.regime)] = seconds
            energy[(config.label, demand.regime)] = seconds * power_model.power(
                config
            )

    # Stage 2: pruned enumeration of (subset, composition) allocations.
    max_k = min(spec.max_configs, spec.num_instances, len(configs))
    best_key: tuple | None = None
    best_solution: tuple | None = None
    evaluated_allocations = 0
    for k in range(1, max_k + 1):
        for subset in combinations(configs, k):
            assignment, mix_score, slo_met = _assign_regimes(
                subset, demands, service, energy, spec
            )
            # Subset-level prune: the mix score is count-independent and
            # only the feasibility flags depend on counts, so a subset
            # already worse than a feasible incumbent cannot win.
            if (
                best_key is not None
                and best_key[0] == 0  # incumbent within capacity
                and best_key[1] == 0.0  # incumbent met the SLO everywhere
                and slo_met
                and not _close(mix_score, best_key[2])
                and mix_score > best_key[2]
            ):
                continue
            used = {assignment[d.regime].label for d in demands}
            if len(used) < len(subset):
                # Some config in the subset serves no regime: the subset
                # without it reaches the same assignment and frees its
                # instances for the configs doing the work.
                continue
            for counts in _compositions(spec.num_instances, k):
                evaluated_allocations += 1
                # Offered load per config group -> utilization.
                utilization = {}
                for config, count in zip(subset, counts):
                    offered_s = sum(
                        d.offered_wps * service[(config.label, d.regime)]
                        for d in demands
                        if assignment[d.regime] is config
                    )
                    utilization[config.label] = offered_s / count
                # Idle groups (configs no regime picked) waste instances
                # unless they absorb nothing; penalize via provisioned
                # power, not a hard reject, to keep every budget solvable.
                provisioned = sum(
                    power_model.power(config) * count
                    for config, count in zip(subset, counts)
                )
                overload = max(utilization.values(), default=0.0)
                capacity_violated = 1 if overload > 1.0 + _TIE_RTOL else 0
                power_violated = 1 if (
                    spec.power_budget_w > 0
                    and provisioned > spec.power_budget_w * (1 + _TIE_RTOL)
                ) else 0
                slo_weight = 0.0 if slo_met else 1.0
                key = (
                    capacity_violated + power_violated,
                    slo_weight,
                    mix_score,
                    provisioned,
                    overload,
                    tuple(c.as_tuple() for c in subset),
                    counts,
                )
                if best_key is None or _key_less(key, best_key):
                    best_key = key
                    best_solution = (subset, counts, assignment, mix_score, slo_met)

    assert best_solution is not None
    subset, counts, assignment, mix_score, slo_met = best_solution
    regime_order = tuple(d.regime for d in demands)
    entries = tuple(
        PortfolioEntry(
            config=config,
            count=count,
            power_w=power_model.power(config),
            utilization=sum(
                d.offered_wps * service[(config.label, d.regime)]
                for d in demands
                if assignment[d.regime] is config
            )
            / count,
            assigned_regimes=tuple(
                r for r in regime_order if assignment[r] is config
            ),
        )
        for config, count in zip(subset, counts)
    )
    expected_latency = sum(
        d.weight * service[(assignment[d.regime].label, d.regime)] for d in demands
    )
    expected_energy = sum(
        d.weight * energy[(assignment[d.regime].label, d.regime)] for d in demands
    )
    return PortfolioSolution(
        forecast_name=spec.forecast.name,
        objective=spec.objective,
        entries=entries,
        assignment=tuple(
            (regime, assignment[regime].label) for regime in regime_order
        ),
        expected_energy_per_window_j=expected_energy,
        expected_latency_s=expected_latency,
        provisioned_power_w=sum(e.power_w * e.count for e in entries),
        slo_met=slo_met,
        evaluated_allocations=evaluated_allocations,
        evaluated_points=evaluated_points,
        solve_seconds=perf_counter() - tic,
    )


def _key_less(a: tuple, b: tuple) -> bool:
    """Band-aware lexicographic comparison of allocation keys.

    Float fields tie inside the synth band and fall through to the next
    field; the trailing integer tuples give a total order, so the first
    allocation in enumeration order wins exact ties.
    """
    for x, y in zip(a, b):
        if isinstance(x, float):
            if _close(x, y):
                continue
            return x < y
        if x != y:
            return x < y
    return False
