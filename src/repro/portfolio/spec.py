"""Portfolio specifications: traffic forecasts and fleet-synthesis specs.

Archytas synthesizes one accelerator for one robot; the CICC 2022
follow-up makes that accelerator runtime-reconfigurable. At datacenter
scale the same question becomes a *fleet planning* problem: given a
forecast of the traffic mix a serving tier will face (how much tunnel
crawling, how many loop closures, ...), which *portfolio* of synthesized
design points should the fixed instance budget be split across?

Two frozen specs describe that problem:

* :class:`TrafficForecast` — a weighted mixture of named
  :mod:`repro.scenarios` specs plus the arrival-rate / session-count
  knobs of the offered load. Resolution is by name with did-you-mean,
  exactly like :func:`repro.scenarios.resolve_scenario`.
* :class:`PortfolioSpec` — the candidate :class:`~repro.synth.spec.DesignSpec`
  grid the solver may synthesize from, the fleet resource budget
  (instance count, distinct-config cap), and the objective:
  latency-SLO-constrained energy or energy-constrained latency.

Both are pure data: a spec plus its seed fully determines the solved
portfolio, byte for byte.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from enum import Enum

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.scenarios import (
    SCENARIOS,
    make_scenario_stats_series,
    pure,
    resolve_scenario,
)
from repro.synth.spec import DesignSpec


class PortfolioObjective(Enum):
    """What the portfolio solver minimizes across the forecast mix."""

    ENERGY = "energy"  # min expected J/window s.t. latency SLO + capacity
    LATENCY = "latency"  # min expected latency s.t. capacity (+ power budget)


@dataclass(frozen=True)
class TrafficForecast:
    """A frozen, validated forecast of the serving tier's traffic mix.

    Attributes:
        name: presentation name (registry key for named forecasts).
        components: ``(scenario_name, weight)`` pairs. Each scenario must
            resolve through :data:`repro.scenarios.SCENARIOS`; a scenario
            that is itself a mixture (e.g. ``"mixed"``) contributes its
            regime weights scaled by the component weight.
        num_sessions: concurrent robot sessions the fleet will carry.
        rate_hz: per-session window arrival rate.
        seed: folded into the sizing-workload draws, so two solves of
            the same forecast see identical regime workloads.
    """

    name: str
    components: tuple[tuple[str, float], ...]
    num_sessions: int = 8
    rate_hz: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError(
                f"forecast {self.name!r} needs at least one scenario component"
            )
        for scenario, weight in self.components:
            resolve_scenario(scenario)  # raises with did-you-mean
            if not weight > 0.0:
                raise ConfigurationError(
                    f"forecast {self.name!r}: component {scenario!r} weight "
                    f"must be positive, got {weight}"
                )
        if self.num_sessions < 1:
            raise ConfigurationError(
                f"num_sessions must be >= 1, got {self.num_sessions}"
            )
        if not self.rate_hz > 0:
            raise ConfigurationError(f"rate_hz must be positive, got {self.rate_hz}")

    def normalized_weights(self) -> tuple[float, ...]:
        """Component weights scaled to sum to 1 (in component order)."""
        total = sum(weight for _, weight in self.components)
        return tuple(weight / total for _, weight in self.components)

    def regime_mix(self) -> tuple[tuple[str, float], ...]:
        """The forecast flattened to normalized per-regime weights.

        Scenario components that are themselves mixtures contribute each
        of their regimes scaled by the component weight; the result is
        aggregated by regime and sorted by regime name, so the mix is a
        canonical form independent of how the components were written.
        """
        accumulated: dict[str, float] = {}
        for (scenario, weight), normalized in zip(
            self.components, self.normalized_weights()
        ):
            spec = resolve_scenario(scenario)
            inner_total = sum(w for _, w in spec.components)
            for regime, inner_weight in spec.components:
                share = normalized * inner_weight / inner_total
                accumulated[regime] = accumulated.get(regime, 0.0) + share
        return tuple(sorted(accumulated.items()))

    @property
    def is_pure(self) -> bool:
        """True when the forecast collapses to a single regime."""
        return len(self.regime_mix()) == 1

    @property
    def offered_load_wps(self) -> float:
        """Aggregate offered window rate across all sessions."""
        return self.num_sessions * self.rate_hz

    def label(self) -> str:
        parts = "+".join(scenario for scenario, _ in self.components)
        return (
            f"{self.name}({parts}, sessions={self.num_sessions}, "
            f"rate={self.rate_hz:g}Hz)"
        )


def forecast(
    components: dict[str, float] | tuple[tuple[str, float], ...],
    name: str = "custom",
    num_sessions: int = 8,
    rate_hz: float = 4.0,
    seed: int = 0,
) -> TrafficForecast:
    """A forecast over named scenarios with the given weights."""
    if isinstance(components, dict):
        components = tuple(sorted(components.items()))
    return TrafficForecast(
        name=name,
        components=tuple(components),
        num_sessions=num_sessions,
        rate_hz=rate_hz,
        seed=seed,
    )


# Named forecasts the CLI/serve tier resolve by string: one per named
# scenario (pure pass-through, including the canonical "mixed" blend)
# plus a skewed blend that stresses the allocation logic.
FORECASTS: dict[str, TrafficForecast] = {
    **{
        name: TrafficForecast(name=name, components=((name, 1.0),))
        for name in sorted(SCENARIOS)
    },
    "tunnel-heavy": forecast(
        {"tunnel": 3.0, "loop_closure": 1.0}, name="tunnel-heavy"
    ),
}


def available_forecasts() -> list[str]:
    """All registered forecast names, sorted."""
    return sorted(FORECASTS)


def resolve_forecast(forecast: str | TrafficForecast) -> TrafficForecast:
    """Look up a named forecast (pass-through for specs), with
    did-you-mean on typos."""
    if isinstance(forecast, TrafficForecast):
        return forecast
    if forecast not in FORECASTS:
        close = difflib.get_close_matches(forecast, FORECASTS, n=3, cutoff=0.4)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; choose from {available_forecasts()}"
        )
        raise ConfigurationError(f"unknown traffic forecast {forecast!r}{hint}")
    return FORECASTS[forecast]


# ----------------------------------------------------------------------
# Regime demands: the solver's per-regime workload characterization
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RegimeDemand:
    """One regime's share of the forecast, with its sizing workload."""

    regime: str
    weight: float  # normalized share of offered windows
    stats: WindowStats  # representative per-window workload
    iterations: int  # representative NLS iteration count
    offered_wps: float  # weight * aggregate offered rate


def regime_sizing_workload(
    regime: str, seed: int, num_windows: int = 32, max_features: int = 200
) -> tuple[WindowStats, int]:
    """The deterministic sizing workload of one regime.

    The per-window mean of the regime's seeded stats series — the same
    series the trace/latency oracles replay — rounded back to a valid
    :class:`WindowStats`. A mean (not a max) because the portfolio sizes
    for the *expected* mix; tail windows are the router's problem.
    """
    series = make_scenario_stats_series(
        pure(regime), seed, num_windows=num_windows, max_features=max_features
    )
    count = len(series)
    features = max(1, round(sum(s.num_features for s, _ in series) / count))
    keyframes = max(1, round(sum(s.num_keyframes for s, _ in series) / count))
    avg_obs = sum(s.avg_observations for s, _ in series) / count
    marginalized = min(
        features, round(sum(s.num_marginalized for s, _ in series) / count)
    )
    iterations = max(1, round(sum(it for _, it in series) / count))
    stats = WindowStats(
        num_features=features,
        avg_observations=avg_obs,
        num_keyframes=keyframes,
        num_marginalized=marginalized,
        num_observations=round(avg_obs * features),
    )
    return stats, iterations


def regime_demands(
    forecast: TrafficForecast, num_windows: int = 32, max_features: int = 200
) -> tuple[RegimeDemand, ...]:
    """Flatten a forecast into per-regime demands with sizing workloads."""
    demands = []
    for regime, weight in forecast.regime_mix():
        stats, iterations = regime_sizing_workload(
            regime, forecast.seed, num_windows=num_windows, max_features=max_features
        )
        demands.append(
            RegimeDemand(
                regime=regime,
                weight=weight,
                stats=stats,
                iterations=iterations,
                offered_wps=weight * forecast.offered_load_wps,
            )
        )
    return tuple(demands)


# ----------------------------------------------------------------------
# The portfolio spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PortfolioSpec:
    """Constraints of one fleet-synthesis solve.

    Attributes:
        forecast: the traffic mix being planned for.
        candidates: the :class:`DesignSpec` grid the solver synthesizes
            per-regime candidate configs from (each spec's latency
            budget / objective applies to its own synthesis runs).
        num_instances: the fleet's instance budget — every solution
            allocates exactly this many instances.
        max_configs: distinct configs the portfolio may mix (1 reduces
            the solve to single-config synthesis).
        objective: ENERGY (min expected J/window subject to the latency
            SLO) or LATENCY (min expected latency subject to capacity
            and, optionally, the provisioned power budget).
        latency_slo_s: per-window service-latency SLO each regime's
            assigned config should meet (ENERGY objective).
        power_budget_w: cap on provisioned fleet power (LATENCY
            objective); 0 means unbounded.
        sizing_windows / max_features: scale of the per-regime sizing
            series (kept in the spec so the solve is replayable).
    """

    forecast: TrafficForecast
    candidates: tuple[DesignSpec, ...]
    num_instances: int = 2
    max_configs: int = 2
    objective: PortfolioObjective = PortfolioObjective.ENERGY
    latency_slo_s: float = 0.050
    power_budget_w: float = 0.0
    sizing_windows: int = 32
    max_features: int = 200

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("a portfolio needs at least one candidate spec")
        if self.num_instances < 1:
            raise ConfigurationError(
                f"num_instances must be >= 1, got {self.num_instances}"
            )
        if self.max_configs < 1:
            raise ConfigurationError(
                f"max_configs must be >= 1, got {self.max_configs}"
            )
        if not self.latency_slo_s > 0:
            raise ConfigurationError(
                f"latency_slo_s must be positive, got {self.latency_slo_s}"
            )
        if self.power_budget_w < 0:
            raise ConfigurationError(
                f"power_budget_w must be >= 0, got {self.power_budget_w}"
            )
        if self.sizing_windows < 1 or self.max_features < 1:
            raise ConfigurationError(
                "sizing_windows and max_features must be >= 1"
            )


def default_candidates() -> tuple[DesignSpec, ...]:
    """The default candidate grid: the two named Tbl. 2 budgets.

    Mirrors :data:`repro.engine.stages.NAMED_DESIGN_SPECS` — a
    high-performance 20 ms budget and a low-power 33 ms budget — without
    importing the engine layer.
    """
    return (
        DesignSpec(latency_budget_s=0.020),
        DesignSpec(latency_budget_s=0.033),
    )


def default_portfolio_spec(
    forecast: str | TrafficForecast,
    num_instances: int = 2,
    max_configs: int = 0,
    objective: PortfolioObjective = PortfolioObjective.ENERGY,
    latency_slo_s: float = 0.050,
    power_budget_w: float = 0.0,
) -> PortfolioSpec:
    """The spec the serve tier and CLI solve when given only a forecast.

    ``max_configs=0`` defaults to ``min(num_instances, 3)`` — enough
    diversity to cover a mixed forecast without exploding enumeration.
    """
    resolved = resolve_forecast(forecast)
    if max_configs < 1:
        max_configs = min(num_instances, 3)
    return PortfolioSpec(
        forecast=resolved,
        candidates=default_candidates(),
        num_instances=num_instances,
        max_configs=max_configs,
        objective=objective,
        latency_slo_s=latency_slo_s,
        power_budget_w=power_budget_w,
    )
