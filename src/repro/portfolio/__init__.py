"""Fleet-level portfolio synthesis and config-aware routing.

Archytas (Sec. 7.6) dynamically optimizes one accelerator for one
robot; this package lifts the idea to datacenter scale: synthesize the
best *portfolio* of design points for a forecast traffic mix
(:mod:`spec`, :mod:`solver`), charge partial-reconfiguration swaps in
virtual time (:mod:`reconfig`), and route each window to the instance
whose config minimizes marginal completion time (:mod:`router`). The
serving tier consumes all four through ``LoadProfile(portfolio=...,
route="marginal")``; ``python -m repro.portfolio`` solves and reports
standalone. See ``docs/portfolio.md``.
"""

from repro.portfolio.reconfig import (
    DEFAULT_RECONFIG_MODEL,
    PartialReconfigModel,
    ReconfigCharge,
    build_portfolio_reconfig_table,
    reconfig_distance,
)
from repro.portfolio.router import (
    brute_force_choice,
    choose_instance,
    drift_candidate,
)
from repro.portfolio.solver import (
    PortfolioEntry,
    PortfolioSolution,
    regime_design_spec,
    solve_portfolio,
)
from repro.portfolio.spec import (
    FORECASTS,
    PortfolioObjective,
    PortfolioSpec,
    RegimeDemand,
    TrafficForecast,
    available_forecasts,
    default_candidates,
    default_portfolio_spec,
    forecast,
    regime_demands,
    regime_sizing_workload,
    resolve_forecast,
)

__all__ = [
    "DEFAULT_RECONFIG_MODEL",
    "FORECASTS",
    "PartialReconfigModel",
    "PortfolioEntry",
    "PortfolioObjective",
    "PortfolioSolution",
    "PortfolioSpec",
    "ReconfigCharge",
    "RegimeDemand",
    "TrafficForecast",
    "available_forecasts",
    "brute_force_choice",
    "build_portfolio_reconfig_table",
    "choose_instance",
    "default_candidates",
    "default_portfolio_spec",
    "drift_candidate",
    "forecast",
    "reconfig_distance",
    "regime_demands",
    "regime_design_spec",
    "regime_sizing_workload",
    "resolve_forecast",
    "solve_portfolio",
]
