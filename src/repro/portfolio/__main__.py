"""CLI: solve a fleet portfolio for a traffic forecast and report it.

``python -m repro.portfolio mixed --instances 4`` solves the allocation
and prints the portfolio table; ``--output PORTFOLIO.json`` exports the
canonical report (schema ``repro.portfolio/v1``), which
``python -m repro.obs validate`` checks structurally — the same
export-then-validate contract the serve tier uses.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.portfolio.solver import PortfolioSolution, solve_portfolio
from repro.portfolio.spec import (
    PortfolioObjective,
    available_forecasts,
    default_portfolio_spec,
    resolve_forecast,
)

PORTFOLIO_SCHEMA = "repro.portfolio/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.portfolio",
        description="Solve an accelerator portfolio for a traffic forecast.",
    )
    parser.add_argument(
        "forecast",
        nargs="?",
        default="mixed",
        help="named traffic forecast (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list forecasts and exit"
    )
    parser.add_argument(
        "--instances", type=int, default=4, help="fleet instance budget"
    )
    parser.add_argument(
        "--configs",
        type=int,
        default=0,
        help="max distinct configs (0 = solver default)",
    )
    parser.add_argument(
        "--objective",
        choices=[o.value for o in PortfolioObjective],
        default=PortfolioObjective.ENERGY.value,
    )
    parser.add_argument(
        "--slo-ms", type=float, default=50.0, help="per-window latency SLO [ms]"
    )
    parser.add_argument(
        "--power-budget",
        type=float,
        default=0.0,
        help="provisioned fleet power cap [W] (0 = unbounded)",
    )
    parser.add_argument(
        "--sessions", type=int, default=0, help="override forecast session count"
    )
    parser.add_argument(
        "--rate", type=float, default=0.0, help="override per-session rate [Hz]"
    )
    parser.add_argument("--seed", type=int, default=None, help="override seed")
    parser.add_argument(
        "--output", type=Path, default=None, help="write PORTFOLIO.json here"
    )
    return parser


def portfolio_report(solution: PortfolioSolution) -> dict:
    """The canonical PORTFOLIO.json payload (validated by repro.obs)."""
    report = {"schema": PORTFOLIO_SCHEMA, "num_instances": solution.num_instances}
    report.update(solution.as_dict())
    return report


def export_report(solution: PortfolioSolution, path: Path) -> None:
    payload = json.dumps(portfolio_report(solution), sort_keys=True, indent=2)
    path.write_text(payload + "\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in available_forecasts():
            print(f"  {name:<16} {resolve_forecast(name).label()}")
        return 0
    try:
        forecast = resolve_forecast(args.forecast)
        if args.sessions > 0:
            forecast = replace(forecast, num_sessions=args.sessions)
        if args.rate > 0:
            forecast = replace(forecast, rate_hz=args.rate)
        if args.seed is not None:
            forecast = replace(forecast, seed=args.seed)
        spec = default_portfolio_spec(
            forecast,
            num_instances=args.instances,
            max_configs=args.configs,
            objective=PortfolioObjective(args.objective),
            latency_slo_s=args.slo_ms / 1e3,
            power_budget_w=args.power_budget,
        )
        solution = solve_portfolio(spec)
    except (ConfigurationError, InfeasibleDesignError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(solution.render())
    print(
        f"  solved in {solution.solve_seconds * 1e3:.1f} ms "
        f"({solution.evaluated_allocations} allocations, "
        f"{solution.evaluated_points} design points)"
    )
    if args.output is not None:
        export_report(solution, args.output)
        print(f"  report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
