"""SO(3) primitives: hat/vee, exponential/log maps, quaternions.

These are the standard rotation-group operations used throughout
visual-inertial SLAM. Small-angle branches use Taylor expansions so the
maps stay smooth (and differentiable in tests) near the identity.
"""

from __future__ import annotations

import numpy as np

_SMALL_ANGLE = 1e-8


def hat(omega: np.ndarray) -> np.ndarray:
    """Map a 3-vector to the corresponding skew-symmetric matrix.

    ``hat(w) @ v == np.cross(w, v)`` for all 3-vectors ``v``.
    """
    wx, wy, wz = np.asarray(omega, dtype=float).reshape(3)
    return np.array(
        [
            [0.0, -wz, wy],
            [wz, 0.0, -wx],
            [-wy, wx, 0.0],
        ]
    )


def hat_batch(omegas: np.ndarray) -> np.ndarray:
    """Row-wise :func:`hat`: map ``(n, 3)`` vectors to ``(n, 3, 3)`` skews."""
    omegas = np.asarray(omegas, dtype=float).reshape(-1, 3)
    out = np.zeros((omegas.shape[0], 3, 3))
    wx, wy, wz = omegas[:, 0], omegas[:, 1], omegas[:, 2]
    out[:, 0, 1] = -wz
    out[:, 0, 2] = wy
    out[:, 1, 0] = wz
    out[:, 1, 2] = -wx
    out[:, 2, 0] = -wy
    out[:, 2, 1] = wx
    return out


def vee(matrix: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hat`: extract the 3-vector from a skew matrix."""
    matrix = np.asarray(matrix, dtype=float)
    return np.array([matrix[2, 1], matrix[0, 2], matrix[1, 0]])


def so3_exp(omega: np.ndarray) -> np.ndarray:
    """Exponential map: axis-angle 3-vector -> rotation matrix (Rodrigues)."""
    omega = np.asarray(omega, dtype=float).reshape(3)
    theta = float(np.linalg.norm(omega))
    skew = hat(omega)
    if theta < _SMALL_ANGLE:
        # Second-order Taylor expansion around the identity.
        return np.eye(3) + skew + 0.5 * (skew @ skew)
    a = np.sin(theta) / theta
    b = (1.0 - np.cos(theta)) / (theta * theta)
    return np.eye(3) + a * skew + b * (skew @ skew)


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Log map: rotation matrix -> axis-angle 3-vector.

    Handles the theta -> 0 and theta -> pi edge cases explicitly.
    """
    rotation = np.asarray(rotation, dtype=float)
    cos_theta = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < _SMALL_ANGLE:
        return vee(rotation - rotation.T) / 2.0
    if np.pi - theta < 1e-6:
        # Near pi the standard formula is ill-conditioned; recover the
        # axis from the symmetric part R + I = 2*(axis axis^T - ...) trick.
        symmetric = (rotation + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(symmetric), 0.0, None))
        # Fix the signs using the largest component as reference.
        k = int(np.argmax(axis))
        if axis[k] > 0.0:
            for i in range(3):
                if i != k and symmetric[k, i] < 0.0:
                    axis[i] = -axis[i]
        return theta * axis / np.linalg.norm(axis)
    return theta / (2.0 * np.sin(theta)) * vee(rotation - rotation.T)


def quat_normalize(quat: np.ndarray) -> np.ndarray:
    """Normalize a quaternion (w, x, y, z), fixing the sign so w >= 0.

    When w == 0 the two antipodal representations both satisfy w >= 0,
    so the first non-zero imaginary component is made positive to keep
    the convention a total order (needed for round-trip tests).
    """
    quat = np.asarray(quat, dtype=float).reshape(4)
    norm = float(np.linalg.norm(quat))
    if norm == 0.0:
        raise ValueError("cannot normalize a zero quaternion")
    quat = quat / norm
    if quat[0] < 0.0:
        quat = -quat
    elif quat[0] == 0.0:
        for component in quat[1:]:
            if component != 0.0:
                if component < 0.0:
                    quat = -quat
                break
    return quat


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product of two (w, x, y, z) quaternions."""
    w1, x1, y1, z1 = np.asarray(q1, dtype=float).reshape(4)
    w2, x2, y2, z2 = np.asarray(q2, dtype=float).reshape(4)
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quat_to_rot(quat: np.ndarray) -> np.ndarray:
    """Convert a unit quaternion (w, x, y, z) to a rotation matrix."""
    w, x, y, z = quat_normalize(quat)
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def rot_to_quat(rotation: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a unit quaternion (w, x, y, z)."""
    rotation = np.asarray(rotation, dtype=float)
    trace = float(np.trace(rotation))
    if trace > 0.0:
        s = np.sqrt(trace + 1.0) * 2.0
        quat = np.array(
            [
                0.25 * s,
                (rotation[2, 1] - rotation[1, 2]) / s,
                (rotation[0, 2] - rotation[2, 0]) / s,
                (rotation[1, 0] - rotation[0, 1]) / s,
            ]
        )
    else:
        # Use the largest diagonal entry for numerical stability.
        i = int(np.argmax(np.diag(rotation)))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = np.sqrt(max(1.0 + rotation[i, i] - rotation[j, j] - rotation[k, k], 0.0)) * 2.0
        quat = np.empty(4)
        quat[0] = (rotation[k, j] - rotation[j, k]) / s
        quat[1 + i] = 0.25 * s
        quat[1 + j] = (rotation[j, i] + rotation[i, j]) / s
        quat[1 + k] = (rotation[k, i] + rotation[i, k]) / s
    return quat_normalize(quat)


def right_jacobian(phi: np.ndarray) -> np.ndarray:
    """Right Jacobian of SO(3): d Exp(phi + d) ~= Exp(phi) Exp(Jr(phi) d)."""
    phi = np.asarray(phi, dtype=float).reshape(3)
    theta = float(np.linalg.norm(phi))
    skew = hat(phi)
    if theta < _SMALL_ANGLE:
        return np.eye(3) - 0.5 * skew + skew @ skew / 6.0
    a = (1.0 - np.cos(theta)) / (theta * theta)
    b = (theta - np.sin(theta)) / (theta**3)
    return np.eye(3) - a * skew + b * (skew @ skew)


def right_jacobian_inverse(phi: np.ndarray) -> np.ndarray:
    """Inverse of the SO(3) right Jacobian."""
    phi = np.asarray(phi, dtype=float).reshape(3)
    theta = float(np.linalg.norm(phi))
    skew = hat(phi)
    if theta < _SMALL_ANGLE:
        return np.eye(3) + 0.5 * skew + skew @ skew / 12.0
    c = 1.0 / (theta * theta) - (1.0 + np.cos(theta)) / (2.0 * theta * np.sin(theta))
    return np.eye(3) + 0.5 * skew + c * (skew @ skew)


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly-distributed random rotation matrix."""
    quat = rng.normal(size=4)
    return quat_to_rot(quat_normalize(quat))
