"""SE(3) rigid-body transforms.

A pose is a rotation ``R`` (body -> world) and a translation ``t`` (body
origin in world coordinates). ``transform_to_body`` implements the inverse
action used by the camera projection: a world point expressed in the body
(camera) frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.so3 import so3_exp, so3_log


@dataclass(frozen=True)
class SE3:
    """A rigid-body pose: rotation ``R`` (body->world) and translation ``t``."""

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=float).reshape(3, 3)
        translation = np.asarray(self.translation, dtype=float).reshape(3)
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    @staticmethod
    def identity() -> "SE3":
        return SE3()

    @staticmethod
    def exp(xi: np.ndarray) -> "SE3":
        """First-order exponential: xi = (rho, phi) -> SE3.

        Uses the decoupled (SO(3) x R^3) retraction common in VIO
        front-ends rather than the full SE(3) exponential; the two agree
        to first order, which is all the optimizer relies on.
        """
        xi = np.asarray(xi, dtype=float).reshape(6)
        return SE3(so3_exp(xi[3:]), xi[:3])

    def log(self) -> np.ndarray:
        """Inverse of :meth:`exp`: pose -> (rho, phi) 6-vector."""
        return np.concatenate([self.translation, so3_log(self.rotation)])

    def compose(self, other: "SE3") -> "SE3":
        """Return ``self * other`` (apply ``other`` first, then ``self``)."""
        return SE3(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def inverse(self) -> "SE3":
        rot_inv = self.rotation.T
        return SE3(rot_inv, -rot_inv @ self.translation)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Map body-frame point(s) to the world frame."""
        points = np.asarray(points, dtype=float)
        return points @ self.rotation.T + self.translation

    def transform_to_body(self, points: np.ndarray) -> np.ndarray:
        """Map world-frame point(s) into the body frame."""
        points = np.asarray(points, dtype=float)
        return (points - self.translation) @ self.rotation

    def retract(self, delta: np.ndarray) -> "SE3":
        """Right-update the pose by a tangent increment (dp, dtheta).

        Translation is updated additively in the world frame and rotation
        multiplicatively on the right, matching the Jacobians produced by
        :mod:`repro.slam.jacobians`.
        """
        delta = np.asarray(delta, dtype=float).reshape(6)
        return SE3(self.rotation @ so3_exp(delta[3:]), self.translation + delta[:3])

    def local(self, other: "SE3") -> np.ndarray:
        """Tangent difference such that ``self.retract(self.local(o)) == o``."""
        dtheta = so3_log(self.rotation.T @ other.rotation)
        return np.concatenate([other.translation - self.translation, dtheta])

    def matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous transform."""
        out = np.eye(4)
        out[:3, :3] = self.rotation
        out[:3, 3] = self.translation
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SE3(t={self.translation.round(4).tolist()})"


# ----------------------------------------------------------------------
# Batched point transforms (structure-of-arrays form)
# ----------------------------------------------------------------------
#
# These operate on per-row pose stacks — ``rotations (n, 3, 3)`` and
# ``translations (n, 3)`` paired with points ``(n, 3)`` — and are the
# vectorized counterparts of :meth:`SE3.transform` /
# :meth:`SE3.transform_to_body`. They perform the same elementwise
# contractions as the scalar methods so the batched estimator backend
# agrees with the per-factor reference to rounding error.


def transform_points_batch(
    rotations: np.ndarray, translations: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Map body-frame points to the world frame, one pose per row.

    Equivalent to ``[SE3(R_i, t_i).transform(p_i) for i in range(n)]``.
    """
    return np.einsum("nij,nj->ni", rotations, points) + translations


def transform_to_body_batch(
    rotations: np.ndarray, translations: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Map world-frame points into the body frame, one pose per row.

    Equivalent to ``[SE3(R_i, t_i).transform_to_body(p_i) for i in
    range(n)]``: computes ``R_i^T (p_i - t_i)`` without materializing the
    transposed rotations.
    """
    return np.einsum("nji,nj->ni", rotations, points - translations)
