"""The 15-DoF navigation state attached to every keyframe.

A keyframe state bundles pose (6), velocity (3), gyro bias (3) and accel
bias (3) — fifteen scalars, which is the ``k = 15`` that parameterizes the
paper's S-matrix storage analysis (Sec. 3.3). ``retract``/``local`` give
the state a manifold structure so the NLS solver can work with flat
15-vectors per keyframe.

Tangent ordering: (dp, dtheta, dv, dbg, dba).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.se3 import SE3

STATE_DIM = 15
POSE_SLICE = slice(0, 6)
VEL_SLICE = slice(6, 9)
BG_SLICE = slice(9, 12)
BA_SLICE = slice(12, 15)


@dataclass(frozen=True)
class NavState:
    """Pose + velocity + IMU biases of one keyframe."""

    pose: SE3 = field(default_factory=SE3.identity)
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    bias_gyro: np.ndarray = field(default_factory=lambda: np.zeros(3))
    bias_accel: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        for name in ("velocity", "bias_gyro", "bias_accel"):
            value = np.asarray(getattr(self, name), dtype=float).reshape(3)
            object.__setattr__(self, name, value)

    def retract(self, delta: np.ndarray) -> "NavState":
        """Apply a 15-dim tangent increment and return the new state."""
        delta = np.asarray(delta, dtype=float).reshape(STATE_DIM)
        return NavState(
            pose=self.pose.retract(delta[POSE_SLICE]),
            velocity=self.velocity + delta[VEL_SLICE],
            bias_gyro=self.bias_gyro + delta[BG_SLICE],
            bias_accel=self.bias_accel + delta[BA_SLICE],
        )

    def local(self, other: "NavState") -> np.ndarray:
        """Tangent difference: ``self.retract(self.local(o)) == o``."""
        out = np.empty(STATE_DIM)
        out[POSE_SLICE] = self.pose.local(other.pose)
        out[VEL_SLICE] = other.velocity - self.velocity
        out[BG_SLICE] = other.bias_gyro - self.bias_gyro
        out[BA_SLICE] = other.bias_accel - self.bias_accel
        return out

    @property
    def position(self) -> np.ndarray:
        return self.pose.translation

    @property
    def rotation(self) -> np.ndarray:
        return self.pose.rotation
