"""Pinhole camera model with analytic projection Jacobians.

The projection function is the ``P`` of the MAP objective (Equ. 2): it
maps a world point through the keyframe pose into normalized pixel
coordinates. The Jacobians with respect to the pose perturbation and the
landmark position are exactly what the Visual Jacobian (VJac) hardware
unit evaluates per <feature, observation> pair (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.se3 import SE3
from repro.geometry.so3 import hat, hat_batch


@dataclass(frozen=True)
class PinholeCamera:
    """Intrinsics of a pinhole camera.

    Attributes:
        fx, fy: focal lengths in pixels.
        cx, cy: principal point in pixels.
        width, height: image size in pixels, used for visibility tests.
        min_depth: points closer than this (in the camera frame) are
            treated as invisible; also guards the projection Jacobian
            against division by a vanishing depth.
    """

    fx: float = 458.0
    fy: float = 457.0
    cx: float = 367.0
    cy: float = 248.0
    width: int = 752
    height: int = 480
    min_depth: float = 0.05

    def __post_init__(self) -> None:
        if self.fx <= 0 or self.fy <= 0:
            raise ConfigurationError("focal lengths must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("image dimensions must be positive")
        if self.min_depth <= 0:
            raise ConfigurationError("min_depth must be positive")

    @property
    def intrinsic_matrix(self) -> np.ndarray:
        return np.array(
            [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    def project_camera_point(self, point_c: np.ndarray) -> np.ndarray:
        """Project a camera-frame 3D point to pixel coordinates."""
        point_c = np.asarray(point_c, dtype=float).reshape(3)
        z = point_c[2]
        if z < self.min_depth:
            raise ValueError(f"point behind or too close to camera (z={z})")
        u = self.fx * point_c[0] / z + self.cx
        v = self.fy * point_c[1] / z + self.cy
        return np.array([u, v])

    def project(self, pose: SE3, point_w: np.ndarray) -> np.ndarray:
        """Project a world point through a keyframe pose into pixels."""
        return self.project_camera_point(pose.transform_to_body(point_w))

    def is_visible(self, pose: SE3, point_w: np.ndarray) -> bool:
        """True if the world point lands inside the image with z >= min_depth."""
        point_c = pose.transform_to_body(np.asarray(point_w, dtype=float))
        if point_c[2] < self.min_depth:
            return False
        u = self.fx * point_c[0] / point_c[2] + self.cx
        v = self.fy * point_c[1] / point_c[2] + self.cy
        return 0.0 <= u < self.width and 0.0 <= v < self.height

    def projection_jacobians(
        self, pose: SE3, point_w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (residual-space point, d(uv)/d(pose), d(uv)/d(point)).

        The pose Jacobian is with respect to the 6-vector tangent
        (dp world-frame translation, dtheta right-multiplied rotation),
        matching :meth:`repro.geometry.se3.SE3.retract`.
        """
        point_w = np.asarray(point_w, dtype=float).reshape(3)
        point_c = pose.transform_to_body(point_w)
        x, y, z = point_c
        if z < self.min_depth:
            raise ValueError(f"cannot linearize point at depth z={z}")
        inv_z = 1.0 / z
        inv_z2 = inv_z * inv_z
        # d(uv) / d(point_c): the classic 2x3 pinhole Jacobian.
        d_uv_d_pc = np.array(
            [
                [self.fx * inv_z, 0.0, -self.fx * x * inv_z2],
                [0.0, self.fy * inv_z, -self.fy * y * inv_z2],
            ]
        )
        rot_t = pose.rotation.T
        # point_c = R^T (p_w - t); d pc/d t = -R^T; d pc/d theta = hat(pc)
        # (for the right-multiplied rotation update R <- R Exp(dtheta)).
        d_pc_d_pose = np.hstack([-rot_t, hat(point_c)])
        d_uv_d_pose = d_uv_d_pc @ d_pc_d_pose
        d_uv_d_point = d_uv_d_pc @ rot_t
        return point_c, d_uv_d_pose, d_uv_d_point

    # ------------------------------------------------------------------
    # Batched (structure-of-arrays) kernels
    # ------------------------------------------------------------------

    def project_camera_points_batch(self, points_c: np.ndarray) -> np.ndarray:
        """Project camera-frame points ``(n, 3)`` to pixels ``(n, 2)``.

        Unlike :meth:`project_camera_point` this never raises: rows at or
        behind ``min_depth`` still produce (meaningless) numbers — callers
        are expected to cull them through the validity mask returned by
        :meth:`projection_jacobians_batch`. The depth is clamped away from
        zero only to keep the division well defined on culled rows.
        """
        points_c = np.asarray(points_c, dtype=float).reshape(-1, 3)
        z = np.where(np.abs(points_c[:, 2]) > 1e-30, points_c[:, 2], 1e-30)
        out = np.empty((points_c.shape[0], 2))
        out[:, 0] = self.fx * points_c[:, 0] / z + self.cx
        out[:, 1] = self.fy * points_c[:, 1] / z + self.cy
        return out

    def projection_jacobians_batch(
        self, rotations: np.ndarray, points_c: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`projection_jacobians` over ``n`` observations.

        Args:
            rotations: ``(n, 3, 3)`` target-pose rotations (body -> world).
            points_c: ``(n, 3)`` the already-transformed camera-frame
                points (``R^T (p_w - t)``; see
                :func:`repro.geometry.se3.transform_to_body_batch`).

        Returns:
            ``(valid, d_uv_d_pose, d_uv_d_point)`` where ``valid`` is the
            ``(n,)`` boolean in-front-of-camera mask (``z >= min_depth``),
            ``d_uv_d_pose`` is ``(n, 2, 6)`` and ``d_uv_d_point`` is
            ``(n, 2, 3)``. Rows failing the mask hold finite garbage and
            must be discarded by the caller — this is the boolean-mask
            form of the per-factor early ``continue``.
        """
        rotations = np.asarray(rotations, dtype=float).reshape(-1, 3, 3)
        points_c = np.asarray(points_c, dtype=float).reshape(-1, 3)
        n = points_c.shape[0]
        x, y, z = points_c[:, 0], points_c[:, 1], points_c[:, 2]
        valid = z >= self.min_depth
        safe_z = np.where(np.abs(z) > 1e-30, z, 1e-30)
        inv_z = 1.0 / safe_z
        inv_z2 = inv_z * inv_z
        d_uv_d_pc = np.zeros((n, 2, 3))
        d_uv_d_pc[:, 0, 0] = self.fx * inv_z
        d_uv_d_pc[:, 0, 2] = -self.fx * x * inv_z2
        d_uv_d_pc[:, 1, 1] = self.fy * inv_z
        d_uv_d_pc[:, 1, 2] = -self.fy * y * inv_z2
        # d pc / d pose = [-R^T | hat(pc)], assembled blockwise.
        # d_uv_d_pc @ R^T: contract over pc with R^T[j, k] = R[k, j].
        d_uv_d_point = np.einsum("nij,nkj->nik", d_uv_d_pc, rotations)
        d_uv_d_pose = np.empty((n, 2, 6))
        d_uv_d_pose[:, :, 0:3] = -d_uv_d_point
        d_uv_d_pose[:, :, 3:6] = np.einsum(
            "nij,njk->nik", d_uv_d_pc, hat_batch(points_c)
        )
        return valid, d_uv_d_pose, d_uv_d_point
