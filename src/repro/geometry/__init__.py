"""Rotation and rigid-body algebra plus the pinhole camera model.

The SLAM estimator parameterizes orientation updates in the tangent space
of SO(3) (axis-angle via exp/log maps) and keyframe poses as SE(3)
elements. The camera module provides the 3D-to-2D projection ``P`` of
Equ. 2 in the paper and its analytic Jacobians, which the Visual Jacobian
(VJac) primitive evaluates.
"""

from repro.geometry.so3 import (
    hat,
    hat_batch,
    vee,
    so3_exp,
    so3_log,
    quat_to_rot,
    rot_to_quat,
    quat_multiply,
    quat_normalize,
    random_rotation,
    right_jacobian,
    right_jacobian_inverse,
)
from repro.geometry.se3 import SE3, transform_points_batch, transform_to_body_batch
from repro.geometry.navstate import NavState, STATE_DIM
from repro.geometry.camera import PinholeCamera

__all__ = [
    "hat",
    "hat_batch",
    "vee",
    "so3_exp",
    "so3_log",
    "quat_to_rot",
    "rot_to_quat",
    "quat_multiply",
    "quat_normalize",
    "random_rotation",
    "right_jacobian",
    "right_jacobian_inverse",
    "SE3",
    "transform_points_batch",
    "transform_to_body_batch",
    "NavState",
    "STATE_DIM",
    "PinholeCamera",
]
