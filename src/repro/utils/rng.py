"""Deterministic random-number helpers.

All synthetic data in the reproduction is generated from explicit integer
seeds so that every experiment is bit-reproducible. ``split_seed`` derives
independent child seeds from a parent seed and a label, which lets one
sequence seed fan out into trajectory / landmark / noise sub-streams that
do not alias each other.
"""

from __future__ import annotations

import hashlib

import numpy as np


def rng_from_seed(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.default_rng(int(seed))


def split_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a string ``label``.

    Uses SHA-256 so distinct labels give statistically independent
    streams, and the mapping is stable across platforms and runs.
    """
    digest = hashlib.sha256(f"{int(seed)}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")
