"""Small shared helpers: argument validation and seeded randomness."""

from repro.utils.validation import (
    check_finite,
    check_positive,
    check_positive_int,
    check_shape,
    check_square,
    check_symmetric,
)
from repro.utils.rng import rng_from_seed, split_seed

__all__ = [
    "check_finite",
    "check_positive",
    "check_positive_int",
    "check_shape",
    "check_square",
    "check_symmetric",
    "rng_from_seed",
    "split_seed",
]
