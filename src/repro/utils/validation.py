"""Argument-validation helpers used across the library.

These raise :class:`repro.errors.ConfigurationError` (for scalar
parameters) or :class:`ValueError` (for array shape mismatches, which are
programming errors rather than configuration mistakes) with messages that
name the offending argument, so failures surface close to their cause.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number > 0, else raise."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` if it is an integer >= 1, else raise."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` if every element is finite, else raise."""
    array = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def check_shape(name: str, array: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Return ``array`` if it has exactly ``shape``, else raise."""
    array = np.asarray(array, dtype=float)
    if array.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {array.shape}")
    return array


def check_square(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` if it is a square 2-D matrix, else raise."""
    array = np.asarray(array, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {array.shape}")
    return array


def check_symmetric(name: str, array: np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Return ``array`` if it is symmetric to within ``tol``, else raise."""
    array = check_square(name, array)
    if not np.allclose(array, array.T, atol=tol, rtol=0.0):
        raise ValueError(f"{name} must be symmetric (tolerance {tol})")
    return array
