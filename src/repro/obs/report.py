"""Trace rollups: per-category latency breakdowns from a span list.

Backs ``python -m repro.obs report <trace.jsonl>`` — the quick answer
to "where did this run's time go?" without opening a trace viewer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import Span


@dataclass
class RollupRow:
    """Aggregate of one (category, name) span group."""

    category: str
    name: str
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def rollup(spans: list[Span]) -> list[RollupRow]:
    """Group spans by (category, name); sorted by descending total time."""
    groups: dict[tuple[str, str], RollupRow] = {}
    for span in spans:
        key = (span.category, span.name)
        row = groups.get(key)
        if row is None:
            row = groups[key] = RollupRow(span.category, span.name, 0, 0.0, 0.0)
        row.count += 1
        row.total_s += span.duration_s
        row.max_s = max(row.max_s, span.duration_s)
    return sorted(groups.values(), key=lambda r: (-r.total_s, r.category, r.name))


def render_rollup(spans: list[Span], title: str = "trace") -> str:
    """The human-readable per-category latency rollup."""
    rows = rollup(spans)
    grand_total = sum(row.total_s for row in rows)
    categories = {row.category for row in rows}
    lines = [
        f"== {title}: {len(spans)} spans, {len(categories)} categories, "
        f"{grand_total * 1e3:.2f} ms total =="
    ]
    header = (
        f"{'category':<10} {'span':<16} {'count':>7} {'total_ms':>10} "
        f"{'mean_ms':>9} {'max_ms':>9} {'share':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        share = row.total_s / grand_total if grand_total > 0 else 0.0
        lines.append(
            f"{row.category:<10} {row.name:<16} {row.count:>7} "
            f"{row.total_s * 1e3:>10.3f} {row.mean_s * 1e3:>9.3f} "
            f"{row.max_s * 1e3:>9.3f} {share:>5.1%}"
        )
    return "\n".join(lines)
