"""``repro.obs`` — the unified, dependency-free observability layer.

One tracer and one metrics registry shared by every layer of the stack:

* :mod:`repro.obs.tracer` — nestable :class:`Span` contexts recorded
  into a thread-safe per-run :class:`Trace` (wall or virtual clock),
  exported as Chrome ``trace_event`` JSON or flat JSONL;
* :mod:`repro.obs.metrics` — counters, gauges and the log-binned
  :class:`LatencyHistogram` (the single histogram implementation; the
  serve tier re-exports it), collected in a :class:`MetricsRegistry`
  with Prometheus text dumps and a canonical ``OBS_METRICS.json``;
* ``python -m repro.obs report <trace.jsonl>`` — per-category latency
  rollup; ``validate`` checks a Chrome export against the schema.

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.report import RollupRow, render_rollup, rollup
from repro.obs.tracer import (
    CLOCK_VIRTUAL,
    CLOCK_WALL,
    Span,
    Trace,
    global_trace,
    reset_global_trace,
    spans_by,
    validate_chrome_trace,
)

__all__ = [
    "CLOCK_VIRTUAL",
    "CLOCK_WALL",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "RollupRow",
    "Span",
    "Trace",
    "global_trace",
    "render_rollup",
    "reset_global_trace",
    "rollup",
    "spans_by",
    "validate_chrome_trace",
]
