"""Process-local metrics: counters, gauges, log-binned histograms.

This is the single home of the fixed-bin log-scale latency histogram
(previously a private implementation inside ``repro.serve.telemetry``;
the serve tier now re-exports it from here). A :class:`MetricsRegistry`
collects named metrics, dumps them in Prometheus text-exposition format
for eyeballing/scraping, and exports a canonical ``OBS_METRICS.json``
(sorted keys, fixed layout) so two deterministic runs agree iff their
files are byte-identical. Stdlib only.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

# Log-spaced latency bins: 0.05 ms .. ~53 s, 20 bins per decade. Fixed
# edges (rather than adaptive ones) keep histograms mergeable and the
# JSON export stable across runs.
BIN_FLOOR_S = 5e-5
BINS_PER_DECADE = 20
NUM_BINS = 120


def bin_index(seconds: float) -> int:
    if seconds <= BIN_FLOOR_S:
        return 0
    index = int(math.floor(math.log10(seconds / BIN_FLOOR_S) * BINS_PER_DECADE)) + 1
    return min(index, NUM_BINS - 1)


def bin_upper_edge_s(index: int) -> float:
    if index == 0:
        return BIN_FLOOR_S
    return BIN_FLOOR_S * 10.0 ** (index / BINS_PER_DECADE)


class LatencyHistogram:
    """Fixed-bin log-scale histogram with exact count/mean/max tracking.

    Percentiles are reported as the upper edge of the bin containing the
    requested rank — a deterministic, merge-friendly estimate whose
    relative error is bounded by the bin width (~12%).
    """

    def __init__(self) -> None:
        self.counts = [0] * NUM_BINS
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bin_index(seconds)] += 1
        self.total += 1
        self.sum_s += seconds
        self.max_s = max(self.max_s, seconds)

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 1]."""
        if self.total == 0:
            return 0.0
        # Clamp to rank >= 1: ceil(0 * total) is 0, and a rank-0 probe
        # would satisfy ``seen >= rank`` on the very first (possibly
        # empty) bin, reporting the bin floor instead of the smallest
        # observed bin.
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return min(bin_upper_edge_s(index), self.max_s)
        return self.max_s

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.total if self.total else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (fixed bins make this exact
        for counts/max and exact-in-float for the mean). Returns self."""
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_s += other.sum_s
        self.max_s = max(self.max_s, other.max_s)
        return self

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`as_dict` export.

        The sparse bin dump carries the full distribution, so merged
        fleet percentiles computed from per-shard exports are as good as
        ones computed from the live histograms.
        """
        histogram = cls()
        for index, count in data.get("bins", {}).items():
            histogram.counts[int(index)] = int(count)
        histogram.total = int(data.get("count", 0))
        histogram.sum_s = float(data.get("mean_ms", 0.0)) * histogram.total / 1e3
        histogram.max_s = float(data.get("max_ms", 0.0)) / 1e3
        return histogram

    def as_dict(self) -> dict:
        return {
            "count": self.total,
            "mean_ms": self.mean_s * 1e3,
            "max_ms": self.max_s * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            # Sparse bin dump (index -> count) so two runs can be diffed
            # bin by bin, not just at the summary percentiles.
            "bins": {str(i): c for i, c in enumerate(self.counts) if c},
        }


class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class MetricsRegistry:
    """Named counters/gauges/histograms for one process or one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, help)
            return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, help)
            return metric

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = LatencyHistogram()
            return metric

    def register_histogram(self, name: str, histogram: LatencyHistogram) -> None:
        """Attach an externally owned histogram under ``name`` (the serve
        telemetry snapshots its live histograms this way)."""
        with self._lock:
            self._histograms[name] = histogram

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text-exposition dump of every metric."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            if counter.help:
                lines.append(f"# HELP {name} {counter.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value:g}")
        for name, gauge in sorted(self._gauges.items()):
            if gauge.help:
                lines.append(f"# HELP {name} {gauge.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {gauge.value:g}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for index, count in enumerate(hist.counts):
                if not count:
                    continue
                cumulative += count
                edge = bin_upper_edge_s(index)
                lines.append(f'{name}_bucket{{le="{edge:.6g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
            lines.append(f"{name}_sum {hist.sum_s:g}")
            lines.append(f"{name}_count {hist.total}")
        return "\n".join(lines) + "\n"

    def export_json(self, path: str | Path) -> Path:
        """Write the canonical ``OBS_METRICS.json`` (byte-stable for a
        deterministic run: sorted keys, fixed layout)."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n")
        return path
