"""CLI: ``python -m repro.obs report <trace.jsonl>`` and
``python -m repro.obs validate <trace.json>``.

``report`` prints the per-category latency rollup of a JSONL trace;
``validate`` checks a Chrome ``trace_event`` JSON export against the
schema (the gate CI applies to the serve smoke trace) and exits nonzero
on any problem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import render_rollup
from repro.obs.tracer import Trace, validate_chrome_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro observability artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="print a per-category latency rollup of a JSONL trace"
    )
    report.add_argument("trace", metavar="TRACE.jsonl", help="flat JSONL trace file")

    validate = commands.add_parser(
        "validate", help="validate a Chrome trace_event JSON export"
    )
    validate.add_argument("trace", metavar="TRACE.json", help="Chrome trace JSON file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    path = Path(args.trace)
    if not path.is_file():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2

    if args.command == "report":
        trace = Trace.from_jsonl(path)
        if not trace.spans:
            print(f"error: {path} holds no spans", file=sys.stderr)
            return 2
        print(render_rollup(trace.spans, title=path.name))
        return 0

    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        print(f"error: {path} is not valid JSON: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(data)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = len(data["traceEvents"])
    print(f"{path.name}: valid Chrome trace ({events} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
