"""CLI: ``python -m repro.obs report <trace.jsonl>`` and
``python -m repro.obs validate <artifact.json>``.

``report`` prints the per-category latency rollup of a JSONL trace;
``validate`` checks a JSON artifact against its schema and exits
nonzero on any problem. The artifact kind is detected from its content:
a ``traceEvents`` array is a Chrome ``trace_event`` export (the gate CI
applies to the serve smoke trace); a ``schema: "repro.scenarios/..."``
marker is a scenario-matrix ``SCENARIOS.json`` report (the gate the
``scenario-matrix`` CI job applies); a ``schema: "repro.portfolio/..."``
marker is a portfolio-solve ``PORTFOLIO.json`` report (gated by the
``portfolio-smoke`` CI job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import render_rollup
from repro.obs.tracer import Trace, validate_chrome_trace
from repro.obs.validate import (
    POLICY_EVAL_SCHEMA_PREFIX,
    POLICY_SCHEMA_PREFIX,
    PORTFOLIO_SCHEMA_PREFIX,
    SCENARIO_SCHEMA_PREFIX,
    validate_policy_artifact,
    validate_policy_eval,
    validate_portfolio_report,
    validate_scenario_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro observability artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="print a per-category latency rollup of a JSONL trace"
    )
    report.add_argument("trace", metavar="TRACE.jsonl", help="flat JSONL trace file")

    validate = commands.add_parser(
        "validate",
        help="validate a JSON artifact (Chrome trace or SCENARIOS.json)",
    )
    validate.add_argument(
        "trace",
        metavar="ARTIFACT.json",
        help="Chrome trace JSON or scenario-matrix report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    path = Path(args.trace)
    if not path.is_file():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2

    if args.command == "report":
        trace = Trace.from_jsonl(path)
        if not trace.spans:
            print(f"error: {path} holds no spans", file=sys.stderr)
            return 2
        print(render_rollup(trace.spans, title=path.name))
        return 0

    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        print(f"error: {path} is not valid JSON: {error}", file=sys.stderr)
        return 1
    if isinstance(data, dict) and str(data.get("schema", "")).startswith(
        SCENARIO_SCHEMA_PREFIX
    ):
        problems = validate_scenario_report(data)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        cells = len(data["cells"])
        verdict = "PASS" if data["passed"] else "FAIL"
        print(f"{path.name}: valid scenario-matrix report ({cells} cells, {verdict})")
        return 0
    if isinstance(data, dict) and str(data.get("schema", "")).startswith(
        PORTFOLIO_SCHEMA_PREFIX
    ):
        problems = validate_portfolio_report(data)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        entries = len(data["entries"])
        verdict = "SLO-MET" if data["slo_met"] else "SLO-MISSED"
        print(f"{path.name}: valid portfolio report ({entries} configs, {verdict})")
        return 0
    if isinstance(data, dict) and str(data.get("schema", "")).startswith(
        POLICY_EVAL_SCHEMA_PREFIX
    ):
        problems = validate_policy_eval(data)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        profiles = len(data["profiles"])
        verdict = "DOMINATES" if data["passed"] else "FAIL"
        print(
            f"{path.name}: valid policy-eval report ({profiles} profiles, {verdict})"
        )
        return 0
    if isinstance(data, dict) and str(data.get("schema", "")).startswith(
        POLICY_SCHEMA_PREFIX
    ):
        problems = validate_policy_artifact(data)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        caps = len(data["caps"])
        print(
            f"{path.name}: valid policy artifact ({caps} caps, "
            f"digest {data['digest'][:12]})"
        )
        return 0
    problems = validate_chrome_trace(data)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = len(data["traceEvents"])
    print(f"{path.name}: valid Chrome trace ({events} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
