"""Structured tracing: nestable spans over a wall or virtual clock.

A :class:`Span` is one named, categorized interval with attributes; a
:class:`Trace` is the thread-safe per-run recording all layers append
to. Two clock disciplines coexist:

* ``clock="wall"`` — spans measured with ``time.perf_counter`` through
  the :meth:`Trace.span` context manager (or recorded post hoc with
  :meth:`Trace.add_measured`). This is what the engine, the NLS solver
  and the synthesizer use.
* ``clock="virtual"`` — spans stamped with explicit simulated times via
  :meth:`Trace.add_span`. The serving tier records its queue-wait /
  batch / service spans this way, so a seeded run exports a
  byte-identical trace no matter how many worker threads carried the
  numerics.

Exports: Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
Perfetto) and flat JSONL (one span per line, canonical key order —
diffable and byte-stable for virtual clocks). The module is
dependency-free by design: stdlib only.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator

CLOCK_WALL = "wall"
CLOCK_VIRTUAL = "virtual"
CLOCKS = (CLOCK_WALL, CLOCK_VIRTUAL)

#: Keys every Chrome ``trace_event`` complete event must carry.
_CHROME_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


@dataclass
class Span:
    """One recorded interval.

    Attributes:
        name: what ran (e.g. ``"solve"``, ``"service"``).
        category: which layer recorded it (``"nls"``, ``"engine"``,
            ``"serve"``, ``"synth"``).
        start_s: start time in the trace's clock (seconds).
        duration_s: extent in seconds.
        depth: nesting level (0 = top level).
        track: logical track (thread for wall clocks, 0 for virtual).
        attributes: small JSON-safe payload (cache source, session id…).
    """

    name: str
    category: str = "default"
    start_s: float = 0.0
    duration_s: float = 0.0
    depth: int = 0
    track: int = 0
    attributes: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.category,
            "start_s": self.start_s,
            "dur_s": self.duration_s,
            "depth": self.depth,
            "track": self.track,
            "args": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=str(data["name"]),
            category=str(data.get("cat", "default")),
            start_s=float(data["start_s"]),
            duration_s=float(data["dur_s"]),
            depth=int(data.get("depth", 0)),
            track=int(data.get("track", 0)),
            attributes=dict(data.get("args", {})),
        )


class Trace:
    """A thread-safe, append-only recording of spans for one run."""

    def __init__(self, clock: str = CLOCK_WALL, name: str = "trace") -> None:
        if clock not in CLOCKS:
            raise ValueError(f"clock must be one of {CLOCKS}, got {clock!r}")
        self.clock = clock
        self.name = name
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tracks: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return perf_counter() if self.clock == CLOCK_WALL else 0.0

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _track_id(self) -> int:
        if self.clock == CLOCK_VIRTUAL:
            return 0  # virtual spans come from one logical timeline
        ident = threading.get_ident()
        track = self._tracks.get(ident)
        if track is None:
            track = self._tracks[ident] = len(self._tracks)
        return track

    def _append(self, span: Span) -> None:
        with self._lock:
            span.track = self._track_id()
            self.spans.append(span)

    @contextmanager
    def span(
        self, name: str, category: str = "default", **attributes
    ) -> Iterator[Span]:
        """Measure a wall-clock span around a block; yields the live
        :class:`Span` so callers can read ``duration_s`` afterwards or
        attach late attributes."""
        if self.clock != CLOCK_WALL:
            raise ValueError(
                "span() measures wall time; use add_span() with explicit "
                f"times on a {self.clock!r}-clock trace"
            )
        stack = self._stack()
        record = Span(
            name=name,
            category=category,
            depth=len(stack),
            attributes=dict(attributes),
        )
        stack.append(name)
        record.start_s = perf_counter()
        try:
            yield record
        finally:
            record.duration_s = perf_counter() - record.start_s
            stack.pop()
            self._append(record)

    def add_span(
        self,
        name: str,
        category: str = "default",
        start_s: float = 0.0,
        duration_s: float = 0.0,
        depth: int = 0,
        **attributes,
    ) -> Span:
        """Record a span with explicit times (the virtual-clock path)."""
        record = Span(
            name=name,
            category=category,
            start_s=start_s,
            duration_s=duration_s,
            depth=depth,
            attributes=dict(attributes),
        )
        self._append(record)
        return record

    def add_measured(
        self, name: str, category: str = "default", duration_s: float = 0.0, **attributes
    ) -> Span:
        """Record a span whose duration was measured elsewhere (e.g. the
        linearize/assemble split the linear-system build reports)."""
        start = self._now() - duration_s if self.clock == CLOCK_WALL else 0.0
        return self.add_span(
            name, category, start_s=start, duration_s=duration_s, **attributes
        )

    def absorb(
        self,
        child: "Trace",
        name: str,
        category: str = "default",
        attributes: dict | None = None,
    ) -> Span:
        """Fold another trace in under one parent span, atomically.

        The child's spans are appended (depth shifted under the parent)
        in a single locked section, so per-window traces built privately
        on worker threads merge into a shared run trace without
        interleaving.
        """
        spans = list(child.spans)
        if spans:
            start = min(s.start_s for s in spans)
            end = max(s.end_s for s in spans)
        else:
            start = end = self._now()
        parent = Span(
            name=name,
            category=category,
            start_s=start,
            duration_s=end - start,
            attributes=dict(attributes or {}),
        )
        with self._lock:
            track = self._track_id()
            parent.track = track
            self.spans.append(parent)
            for span in spans:
                span.depth += 1
                span.track = track
                self.spans.append(span)
        return parent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def totals(self, by: str = "category") -> dict[str, float]:
        """Summed top-level-equivalent durations keyed by ``category``,
        ``name`` or ``"category/name"`` (``by="both"``)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            if by == "category":
                key = span.category
            elif by == "name":
                key = span.name
            else:
                key = f"{span.category}/{span.name}"
            totals[key] = totals.get(key, 0.0) + span.duration_s
        return totals

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` representation (complete events)."""
        base = min((s.start_s for s in self.spans), default=0.0)
        events = [
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": (span.start_s - base) * 1e6,  # microseconds
                "dur": span.duration_s * 1e6,
                "pid": 1,
                "tid": span.track,
                "args": span.attributes,
            }
            for span in self.spans
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_name": self.name, "clock": self.clock},
        }

    def to_jsonl(self) -> str:
        """Flat JSONL: one canonical-JSON span per line."""
        return "".join(
            json.dumps(span.as_dict(), sort_keys=True) + "\n" for span in self.spans
        )

    def export_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), sort_keys=True, indent=2) + "\n")
        return path

    def export_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path, clock: str = CLOCK_WALL) -> "Trace":
        trace = cls(clock=clock, name=Path(path).stem)
        for line in Path(path).read_text().splitlines():
            if line.strip():
                trace.spans.append(Span.from_dict(json.loads(line)))
        return trace


def validate_chrome_trace(data: object) -> list[str]:
    """Check a loaded JSON object against the Chrome ``trace_event``
    schema (JSON-object form, complete events). Returns a list of
    problems — empty means valid."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in _CHROME_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {i}: missing key {key!r}")
        if event.get("ph") not in ("X", "B", "E", "i", "C", "M"):
            problems.append(f"event {i}: unknown phase {event.get('ph')!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0
            ):
                problems.append(f"event {i}: {key} must be a non-negative number")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"event {i}: 'args' must be an object")
    return problems


# ----------------------------------------------------------------------
# The process-wide default trace
# ----------------------------------------------------------------------

_global_trace: Trace | None = None
_global_lock = threading.Lock()


def global_trace() -> Trace:
    """The process-local default trace.

    Library code with no caller-supplied trace (the synthesizer's solve
    spans, the DSE timing loop) records here, so one process's work can
    always be rolled up after the fact.
    """
    global _global_trace
    with _global_lock:
        if _global_trace is None:
            _global_trace = Trace(clock=CLOCK_WALL, name="global")
        return _global_trace


def reset_global_trace() -> Trace:
    """Swap in a fresh global trace (tests, long-lived processes)."""
    global _global_trace
    with _global_lock:
        _global_trace = Trace(clock=CLOCK_WALL, name="global")
        return _global_trace


def spans_by(spans: Iterable[Span], category: str) -> list[Span]:
    """The subset of ``spans`` recorded under one category."""
    return [span for span in spans if span.category == category]
