"""Schema validation for the ``SCENARIOS.json`` scenario-matrix report.

Pure-structure checks (no imports from the testing layer): the CI
``scenario-matrix`` job validates the uploaded artifact with
``python -m repro.obs validate SCENARIOS.json`` before gating on it, so
a half-written or hand-mangled report fails loudly instead of being
archived as evidence.
"""

from __future__ import annotations

SCENARIO_SCHEMA_PREFIX = "repro.scenarios/"

_CELL_KEYS = {
    "oracle": str,
    "scenario": str,
    "design_point": str,
    "workload": str,
    "passed": bool,
    "checks": int,
    "mismatches": list,
    "seconds": (int, float),
}


def validate_scenario_report(data: object) -> list[str]:
    """All schema problems of one scenario-matrix report (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCENARIO_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {SCENARIO_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("passed"), bool):
        problems.append("missing boolean 'passed' verdict")

    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("'cells' must be a non-empty list")
        cells = []
    scenarios: set[str] = set()
    designs: set[str] = set()
    all_passed = True
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cell {index} is not an object")
            continue
        for key, kind in _CELL_KEYS.items():
            if key not in cell:
                problems.append(f"cell {index} missing key {key!r}")
            elif not isinstance(cell[key], kind):
                problems.append(
                    f"cell {index} key {key!r} has type "
                    f"{type(cell[key]).__name__}"
                )
        if isinstance(cell.get("scenario"), str):
            scenarios.add(cell["scenario"])
        if isinstance(cell.get("design_point"), str):
            designs.add(cell["design_point"])
        if cell.get("passed") is False:
            all_passed = False
        if cell.get("passed") is True and cell.get("mismatches"):
            problems.append(f"cell {index} passed but lists mismatches")
    if isinstance(data.get("passed"), bool) and cells and data["passed"] != all_passed:
        problems.append(
            f"aggregate passed={data['passed']} contradicts the cells "
            f"(all_passed={all_passed})"
        )

    for key, named in (("scenarios", scenarios), ("design_points", designs)):
        listed = data.get(key)
        if not isinstance(listed, list):
            problems.append(f"'{key}' must be a list")
        elif cells and set(listed) != named:
            problems.append(
                f"'{key}' {sorted(listed)} does not match the cells "
                f"{sorted(named)}"
            )

    obs = data.get("obs")
    if not isinstance(obs, dict):
        problems.append("'obs' metrics section missing")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(obs.get(section), dict):
                problems.append(f"obs section {section!r} missing")
        counters = obs.get("counters", {})
        if (
            isinstance(counters, dict)
            and cells
            and counters.get("scenario_matrix_cells_total") != float(len(cells))
        ):
            problems.append(
                "obs counter scenario_matrix_cells_total "
                f"({counters.get('scenario_matrix_cells_total')}) does not "
                f"match the {len(cells)} cells"
            )
    return problems
