"""Schema validation for the ``SCENARIOS.json`` scenario-matrix report.

Pure-structure checks (no imports from the testing layer): the CI
``scenario-matrix`` job validates the uploaded artifact with
``python -m repro.obs validate SCENARIOS.json`` before gating on it, so
a half-written or hand-mangled report fails loudly instead of being
archived as evidence.
"""

from __future__ import annotations

SCENARIO_SCHEMA_PREFIX = "repro.scenarios/"
PORTFOLIO_SCHEMA_PREFIX = "repro.portfolio/"

_CELL_KEYS = {
    "oracle": str,
    "scenario": str,
    "design_point": str,
    "workload": str,
    "passed": bool,
    "checks": int,
    "mismatches": list,
    "seconds": (int, float),
}


def validate_scenario_report(data: object) -> list[str]:
    """All schema problems of one scenario-matrix report (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCENARIO_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {SCENARIO_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("passed"), bool):
        problems.append("missing boolean 'passed' verdict")

    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("'cells' must be a non-empty list")
        cells = []
    scenarios: set[str] = set()
    designs: set[str] = set()
    all_passed = True
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cell {index} is not an object")
            continue
        for key, kind in _CELL_KEYS.items():
            if key not in cell:
                problems.append(f"cell {index} missing key {key!r}")
            elif not isinstance(cell[key], kind):
                problems.append(
                    f"cell {index} key {key!r} has type "
                    f"{type(cell[key]).__name__}"
                )
        if isinstance(cell.get("scenario"), str):
            scenarios.add(cell["scenario"])
        if isinstance(cell.get("design_point"), str):
            designs.add(cell["design_point"])
        if cell.get("passed") is False:
            all_passed = False
        if cell.get("passed") is True and cell.get("mismatches"):
            problems.append(f"cell {index} passed but lists mismatches")
    if isinstance(data.get("passed"), bool) and cells and data["passed"] != all_passed:
        problems.append(
            f"aggregate passed={data['passed']} contradicts the cells "
            f"(all_passed={all_passed})"
        )

    for key, named in (("scenarios", scenarios), ("design_points", designs)):
        listed = data.get(key)
        if not isinstance(listed, list):
            problems.append(f"'{key}' must be a list")
        elif cells and set(listed) != named:
            problems.append(
                f"'{key}' {sorted(listed)} does not match the cells "
                f"{sorted(named)}"
            )

    obs = data.get("obs")
    if not isinstance(obs, dict):
        problems.append("'obs' metrics section missing")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(obs.get(section), dict):
                problems.append(f"obs section {section!r} missing")
        counters = obs.get("counters", {})
        if (
            isinstance(counters, dict)
            and cells
            and counters.get("scenario_matrix_cells_total") != float(len(cells))
        ):
            problems.append(
                "obs counter scenario_matrix_cells_total "
                f"({counters.get('scenario_matrix_cells_total')}) does not "
                f"match the {len(cells)} cells"
            )
    return problems


_ENTRY_KEYS = {
    "config_id": str,
    "count": int,
    "nd": int,
    "nm": int,
    "s": int,
    "power_w": (int, float),
    "utilization": (int, float),
    "assigned_regimes": list,
}

_SOLUTION_FLOATS = (
    "expected_energy_per_window_j",
    "expected_latency_s",
    "provisioned_power_w",
)


def validate_portfolio_report(data: object) -> list[str]:
    """All schema problems of one ``PORTFOLIO.json`` report (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(PORTFOLIO_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {PORTFOLIO_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("missing non-empty string 'name' (the forecast)")
    if data.get("objective") not in ("energy", "latency"):
        problems.append(
            f"objective must be 'energy' or 'latency', got {data.get('objective')!r}"
        )
    if not isinstance(data.get("slo_met"), bool):
        problems.append("missing boolean 'slo_met' verdict")
    for key in _SOLUTION_FLOATS:
        value = data.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"'{key}' must be a number, got {value!r}")
        elif value < 0:
            problems.append(f"'{key}' must be non-negative, got {value!r}")

    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        problems.append("'entries' must be a non-empty list")
        entries = []
    config_ids: set[str] = set()
    total_count = 0
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"entry {index} is not an object")
            continue
        for key, kind in _ENTRY_KEYS.items():
            if key not in entry:
                problems.append(f"entry {index} missing key {key!r}")
            elif not isinstance(entry[key], kind) or isinstance(entry[key], bool):
                problems.append(
                    f"entry {index} key {key!r} has type "
                    f"{type(entry[key]).__name__}"
                )
        if isinstance(entry.get("count"), int) and not isinstance(
            entry.get("count"), bool
        ):
            if entry["count"] < 1:
                problems.append(f"entry {index} count must be >= 1")
            total_count += max(entry["count"], 0)
        if isinstance(entry.get("config_id"), str):
            if entry["config_id"] in config_ids:
                problems.append(f"entry {index} repeats config {entry['config_id']!r}")
            config_ids.add(entry["config_id"])

    instances = data.get("num_instances")
    if not isinstance(instances, int) or isinstance(instances, bool) or instances < 1:
        problems.append(f"'num_instances' must be a positive integer, got {instances!r}")
    elif entries and total_count != instances:
        problems.append(
            f"entry counts sum to {total_count}, not num_instances={instances}"
        )

    assignment = data.get("assignment")
    if not isinstance(assignment, dict):
        problems.append("'assignment' must be an object (regime -> config_id)")
    else:
        for regime, config_id in sorted(assignment.items()):
            if not isinstance(config_id, str):
                problems.append(f"assignment for {regime!r} is not a config id string")
            elif entries and config_id not in config_ids:
                problems.append(
                    f"assignment for {regime!r} names unknown config {config_id!r}"
                )
    return problems
