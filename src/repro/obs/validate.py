"""Schema validation for the ``SCENARIOS.json`` scenario-matrix report.

Pure-structure checks (no imports from the testing layer): the CI
``scenario-matrix`` job validates the uploaded artifact with
``python -m repro.obs validate SCENARIOS.json`` before gating on it, so
a half-written or hand-mangled report fails loudly instead of being
archived as evidence.
"""

from __future__ import annotations

SCENARIO_SCHEMA_PREFIX = "repro.scenarios/"
PORTFOLIO_SCHEMA_PREFIX = "repro.portfolio/"
POLICY_SCHEMA_PREFIX = "repro.policy/"
POLICY_EVAL_SCHEMA_PREFIX = "repro.policy-eval/"

_CELL_KEYS = {
    "oracle": str,
    "scenario": str,
    "design_point": str,
    "workload": str,
    "passed": bool,
    "checks": int,
    "mismatches": list,
    "seconds": (int, float),
}


def validate_scenario_report(data: object) -> list[str]:
    """All schema problems of one scenario-matrix report (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCENARIO_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {SCENARIO_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("passed"), bool):
        problems.append("missing boolean 'passed' verdict")

    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("'cells' must be a non-empty list")
        cells = []
    scenarios: set[str] = set()
    designs: set[str] = set()
    all_passed = True
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cell {index} is not an object")
            continue
        for key, kind in _CELL_KEYS.items():
            if key not in cell:
                problems.append(f"cell {index} missing key {key!r}")
            elif not isinstance(cell[key], kind):
                problems.append(
                    f"cell {index} key {key!r} has type "
                    f"{type(cell[key]).__name__}"
                )
        if isinstance(cell.get("scenario"), str):
            scenarios.add(cell["scenario"])
        if isinstance(cell.get("design_point"), str):
            designs.add(cell["design_point"])
        if cell.get("passed") is False:
            all_passed = False
        if cell.get("passed") is True and cell.get("mismatches"):
            problems.append(f"cell {index} passed but lists mismatches")
    if isinstance(data.get("passed"), bool) and cells and data["passed"] != all_passed:
        problems.append(
            f"aggregate passed={data['passed']} contradicts the cells "
            f"(all_passed={all_passed})"
        )

    for key, named in (("scenarios", scenarios), ("design_points", designs)):
        listed = data.get(key)
        if not isinstance(listed, list):
            problems.append(f"'{key}' must be a list")
        elif cells and set(listed) != named:
            problems.append(
                f"'{key}' {sorted(listed)} does not match the cells "
                f"{sorted(named)}"
            )

    obs = data.get("obs")
    if not isinstance(obs, dict):
        problems.append("'obs' metrics section missing")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(obs.get(section), dict):
                problems.append(f"obs section {section!r} missing")
        counters = obs.get("counters", {})
        if (
            isinstance(counters, dict)
            and cells
            and counters.get("scenario_matrix_cells_total") != float(len(cells))
        ):
            problems.append(
                "obs counter scenario_matrix_cells_total "
                f"({counters.get('scenario_matrix_cells_total')}) does not "
                f"match the {len(cells)} cells"
            )
    return problems


_ENTRY_KEYS = {
    "config_id": str,
    "count": int,
    "nd": int,
    "nm": int,
    "s": int,
    "power_w": (int, float),
    "utilization": (int, float),
    "assigned_regimes": list,
}

_SOLUTION_FLOATS = (
    "expected_energy_per_window_j",
    "expected_latency_s",
    "provisioned_power_w",
)


def validate_portfolio_report(data: object) -> list[str]:
    """All schema problems of one ``PORTFOLIO.json`` report (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(PORTFOLIO_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {PORTFOLIO_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("missing non-empty string 'name' (the forecast)")
    if data.get("objective") not in ("energy", "latency"):
        problems.append(
            f"objective must be 'energy' or 'latency', got {data.get('objective')!r}"
        )
    if not isinstance(data.get("slo_met"), bool):
        problems.append("missing boolean 'slo_met' verdict")
    for key in _SOLUTION_FLOATS:
        value = data.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"'{key}' must be a number, got {value!r}")
        elif value < 0:
            problems.append(f"'{key}' must be non-negative, got {value!r}")

    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        problems.append("'entries' must be a non-empty list")
        entries = []
    config_ids: set[str] = set()
    total_count = 0
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"entry {index} is not an object")
            continue
        for key, kind in _ENTRY_KEYS.items():
            if key not in entry:
                problems.append(f"entry {index} missing key {key!r}")
            elif not isinstance(entry[key], kind) or isinstance(entry[key], bool):
                problems.append(
                    f"entry {index} key {key!r} has type "
                    f"{type(entry[key]).__name__}"
                )
        if isinstance(entry.get("count"), int) and not isinstance(
            entry.get("count"), bool
        ):
            if entry["count"] < 1:
                problems.append(f"entry {index} count must be >= 1")
            total_count += max(entry["count"], 0)
        if isinstance(entry.get("config_id"), str):
            if entry["config_id"] in config_ids:
                problems.append(f"entry {index} repeats config {entry['config_id']!r}")
            config_ids.add(entry["config_id"])

    instances = data.get("num_instances")
    if not isinstance(instances, int) or isinstance(instances, bool) or instances < 1:
        problems.append(f"'num_instances' must be a positive integer, got {instances!r}")
    elif entries and total_count != instances:
        problems.append(
            f"entry counts sum to {total_count}, not num_instances={instances}"
        )

    assignment = data.get("assignment")
    if not isinstance(assignment, dict):
        problems.append("'assignment' must be an object (regime -> config_id)")
    else:
        for regime, config_id in sorted(assignment.items()):
            if not isinstance(config_id, str):
                problems.append(f"assignment for {regime!r} is not a config id string")
            elif entries and config_id not in config_ids:
                problems.append(
                    f"assignment for {regime!r} names unknown config {config_id!r}"
                )
    return problems


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_policy_artifact(data: object) -> list[str]:
    """All schema problems of one frozen ``POLICY.json`` (empty = valid).

    Pure-structure checks plus the digest recomputation: the artifact is
    content-addressed, so a hand-edited weight fails loudly here before
    a serve run would silently produce different decisions.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"artifact must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(POLICY_SCHEMA_PREFIX):
        problems.append(
            f"schema must be a string starting with {POLICY_SCHEMA_PREFIX!r}, "
            f"got {schema!r}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("missing non-empty string 'name'")

    caps = data.get("caps")
    if (
        not isinstance(caps, list)
        or not caps
        or any(not isinstance(c, int) or isinstance(c, bool) for c in caps)
    ):
        problems.append("'caps' must be a non-empty list of integers")
        caps = []
    elif caps != sorted(set(caps)) or caps[0] < 1:
        problems.append(f"'caps' must be strictly increasing and >= 1, got {caps}")

    heads = data.get("error_heads")
    if not isinstance(heads, list) or (caps and len(heads) != len(caps)):
        problems.append(
            f"'error_heads' must list one head per cap "
            f"({len(caps)} caps, got "
            f"{len(heads) if isinstance(heads, list) else type(heads).__name__})"
        )
        heads = []
    widths = set()
    for index, head in enumerate(heads):
        if not isinstance(head, list) or not head or not all(
            _is_number(w) for w in head
        ):
            problems.append(f"error head {index} is not a list of numbers")
        else:
            widths.add(len(head))
    if len(widths) > 1:
        problems.append(f"error heads disagree on feature width: {sorted(widths)}")

    actions = data.get("admission_actions")
    admission = data.get("admission_heads")
    if actions != ["accept", "degrade", "shed"]:
        problems.append(
            f"'admission_actions' must be ['accept', 'degrade', 'shed'], "
            f"got {actions!r}"
        )
    if not isinstance(admission, list) or len(admission) != 3:
        problems.append("'admission_heads' must list exactly 3 heads")
    else:
        for index, head in enumerate(admission):
            if not isinstance(head, list) or not head or not all(
                _is_number(w) for w in head
            ):
                problems.append(f"admission head {index} is not a list of numbers")

    if not _is_number(data.get("energy_weight")) or data["energy_weight"] < 0:
        problems.append("'energy_weight' must be a non-negative number")
    alpha = data.get("drift_alpha")
    if not _is_number(alpha) or not 0.0 < alpha <= 1.0:
        problems.append(f"'drift_alpha' must lie in (0, 1], got {alpha!r}")
    if not isinstance(data.get("trained_on"), list):
        problems.append("'trained_on' must be a list of profile names")

    digest = data.get("digest")
    if not isinstance(digest, str) or len(digest) != 64:
        problems.append("'digest' must be a 64-hex-char sha256 string")
    else:
        import hashlib
        import json as _json

        body = {key: value for key, value in data.items() if key != "digest"}
        canonical = _json.dumps(body, sort_keys=True, separators=(",", ":"))
        expected = hashlib.sha256(canonical.encode()).hexdigest()
        if digest != expected:
            problems.append(
                f"digest {digest[:12]}... does not match the content "
                f"({expected[:12]}...): the artifact was edited after freezing"
            )
    return problems


_EVAL_PROFILE_FLOATS = ("energy_j", "mean_drift_m")
_EVAL_PROFILE_INTS = ("windows_served", "windows_shed", "deadline_misses", "errors")


def validate_policy_eval(data: object) -> list[str]:
    """All schema problems of one ``POLICY_EVAL.json`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(
        POLICY_EVAL_SCHEMA_PREFIX
    ):
        problems.append(
            f"schema must be a string starting with "
            f"{POLICY_EVAL_SCHEMA_PREFIX!r}, got {schema!r}"
        )
    if not isinstance(data.get("passed"), bool):
        problems.append("missing boolean 'passed' verdict")
    policy = data.get("policy")
    if not isinstance(policy, dict) or not policy.get("name"):
        problems.append("'policy' must be an object naming the frozen artifact")
    elif not isinstance(policy.get("digest"), str):
        problems.append("'policy' must carry the artifact digest")

    profiles = data.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("'profiles' must be a non-empty list")
        profiles = []
    all_dominated = True
    for index, entry in enumerate(profiles):
        if not isinstance(entry, dict):
            problems.append(f"profile entry {index} is not an object")
            continue
        if not isinstance(entry.get("profile"), str) or not entry.get("profile"):
            problems.append(f"profile entry {index} missing 'profile' name")
        if not isinstance(entry.get("dominates"), bool):
            problems.append(f"profile entry {index} missing boolean 'dominates'")
        elif not entry["dominates"]:
            all_dominated = False
        for side in ("baseline", "learned"):
            block = entry.get(side)
            if not isinstance(block, dict):
                problems.append(f"profile entry {index} missing {side!r} metrics")
                continue
            for key in _EVAL_PROFILE_FLOATS:
                if not _is_number(block.get(key)):
                    problems.append(
                        f"profile entry {index} {side} key {key!r} must be a number"
                    )
            for key in _EVAL_PROFILE_INTS:
                value = block.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(
                        f"profile entry {index} {side} key {key!r} must be an int"
                    )
    if (
        isinstance(data.get("passed"), bool)
        and profiles
        and data["passed"] != all_dominated
    ):
        problems.append(
            f"aggregate passed={data['passed']} contradicts the profiles "
            f"(all dominated={all_dominated})"
        )
    return problems
