"""Fixed-point arithmetic modeling for the accelerator datapath.

The generated hardware computes in fixed point (the RTL's 32-bit MAC
lanes), not IEEE doubles. This module models Q-format quantization so
the wordlength decision can be studied: quantize the linear system the
way the Input Buffer would, run the same solve, and measure the error
against the double-precision result. The study
(:func:`wordlength_study`) reproduces the classic accelerator-design
curve — solution error falls exponentially with fraction bits and hits
the noise floor around Q16-Q20, which is why 32-bit words are safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``integer_bits``.``fraction_bits``.

    The sign bit is accounted separately: total width is
    1 + integer_bits + fraction_bits.
    """

    integer_bits: int = 15
    fraction_bits: int = 16

    def __post_init__(self) -> None:
        if self.integer_bits < 1 or self.fraction_bits < 0:
            raise ConfigurationError("invalid Q format")

    @property
    def total_bits(self) -> int:
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def resolution(self) -> float:
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        return 2.0**self.integer_bits - self.resolution

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to the grid and saturate to the representable range."""
        values = np.asarray(values, dtype=float)
        scaled = np.round(values / self.resolution) * self.resolution
        return np.clip(scaled, -(2.0**self.integer_bits), self.max_value)

    def quantization_noise_std(self) -> float:
        """Std of uniform rounding noise: resolution / sqrt(12)."""
        return self.resolution / np.sqrt(12.0)


def quantized_solve(
    u_diag: np.ndarray,
    w_block: np.ndarray,
    v_block: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
    q_format: QFormat,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the arrow system with inputs quantized to the Q format.

    Models the dominant fixed-point effect — input/parameter-buffer
    quantization — while the accumulations run at the MAC's doubled
    internal width (as in the RTL's 2*WIDTH accumulators).

    With ``normalize`` (the default, matching the hardware), the system
    is block-scaled before quantization: the Input Buffer stores values
    scaled by a power of two chosen so the largest magnitude fits the
    format, with the exponent tracked per block — block floating point.
    Scaling (alpha A) x = (alpha b) leaves the solution unchanged, so
    only the *relative* quantization noise remains.
    """
    from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky
    from repro.linalg.schur import d_type_back_substitute, d_type_schur

    if normalize:
        peak = max(
            float(np.abs(np.asarray(arr)).max(initial=0.0))
            for arr in (u_diag, w_block, v_block, b_x, b_y)
        )
        if peak > 0.0:
            # Power-of-two scale so the peak sits just inside the format.
            scale = 2.0 ** np.floor(np.log2(q_format.max_value / peak))
        else:
            scale = 1.0
    else:
        scale = 1.0

    u_q = np.maximum(q_format.quantize(u_diag * scale), q_format.resolution)
    w_q = q_format.quantize(w_block * scale)
    v_q = q_format.quantize(v_block * scale)
    bx_q = q_format.quantize(b_x * scale)
    by_q = q_format.quantize(b_y * scale)

    reduced, reduced_rhs = d_type_schur(v_q, w_q, u_q, b_x=bx_q, b_y=by_q)
    assert reduced_rhs is not None
    # Coarse quantization can push the reduced matrix off positive
    # definiteness; the hardware's LM damping absorbs exactly this, so
    # escalate a quantization-scaled jitter until the factorization
    # succeeds (bounded retries).
    from repro.errors import SolverError

    jitter = max(1e-9, q_format.resolution)
    factor = None
    for _ in range(6):
        try:
            factor, _ = cholesky_evaluate_update(
                reduced + jitter * np.eye(reduced.shape[0])
            )
            break
        except SolverError:
            jitter *= 100.0
    if factor is None:
        raise SolverError(
            f"reduced system not factorable at {q_format.fraction_bits} fraction bits"
        )
    d_state = solve_cholesky(factor, reduced_rhs)
    d_lambda = d_type_back_substitute(w_q, u_q, bx_q, d_state)
    return d_lambda, d_state


def wordlength_study(
    u_diag: np.ndarray,
    w_block: np.ndarray,
    v_block: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
    fraction_bits: tuple[int, ...] = (4, 8, 12, 16, 20, 24),
) -> dict[int, float]:
    """Relative solution error vs fraction-bit count.

    Returns fraction_bits -> ||x_q - x|| / ||x|| against the
    double-precision reference.
    """
    from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky
    from repro.linalg.schur import d_type_back_substitute, d_type_schur

    u = np.maximum(np.asarray(u_diag, dtype=float), 1e-12)
    reduced, reduced_rhs = d_type_schur(v_block, w_block, u, b_x=b_x, b_y=b_y)
    assert reduced_rhs is not None
    factor, _ = cholesky_evaluate_update(reduced + 1e-9 * np.eye(reduced.shape[0]))
    ref_state = solve_cholesky(factor, reduced_rhs)
    ref_lambda = d_type_back_substitute(w_block, u, b_x, ref_state)
    reference = np.concatenate([ref_lambda, ref_state])
    norm = max(float(np.linalg.norm(reference)), 1e-300)

    errors = {}
    for bits in fraction_bits:
        q_lambda, q_state = quantized_solve(
            u_diag, w_block, v_block, b_x, b_y, QFormat(fraction_bits=bits)
        )
        solution = np.concatenate([q_lambda, q_state])
        errors[bits] = float(np.linalg.norm(solution - reference)) / norm
    return errors
