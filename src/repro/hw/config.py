"""The three-knob hardware configuration (nd, nm, s).

These are the customization parameters of Sec. 4.1: the number of MAC
units in the D-type and M-type Schur blocks and the number of Update
units in the Cholesky block. Everything else in the template is fixed
function, so a concrete accelerator design is fully described by this
triple (plus the target FPGA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

# Knob bounds delimiting the explored design space (Sec. 7.3's ~90,000
# points: roughly 30 x 25 x 120).
ND_RANGE = (1, 30)
NM_RANGE = (1, 25)
S_RANGE = (1, 120)


@dataclass(frozen=True, order=True)
class HardwareConfig:
    """One point in the (nd, nm, s) design space."""

    nd: int = 8
    nm: int = 8
    s: int = 16

    def __post_init__(self) -> None:
        for name, value, (low, high) in (
            ("nd", self.nd, ND_RANGE),
            ("nm", self.nm, NM_RANGE),
            ("s", self.s, S_RANGE),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(f"{name} must be an integer")
            if not low <= value <= high:
                raise ConfigurationError(
                    f"{name} must be in [{low}, {high}], got {value}"
                )

    def dominates(self, other: "HardwareConfig") -> bool:
        """Componentwise <=: this config uses no more of any resource."""
        return self.nd <= other.nd and self.nm <= other.nm and self.s <= other.s

    @property
    def label(self) -> str:
        """Stable human-readable identity, e.g. ``nd8-nm8-s16``.

        The serving tier keys per-config telemetry on this string, so it
        must be a pure function of the knobs — never of object identity.
        """
        return f"nd{self.nd}-nm{self.nm}-s{self.s}"

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.nd, self.nm, self.s)


def design_space_size() -> int:
    """Number of points in the explored design space (Sec. 7.3: ~90k)."""
    return (
        (ND_RANGE[1] - ND_RANGE[0] + 1)
        * (NM_RANGE[1] - NM_RANGE[0] + 1)
        * (S_RANGE[1] - S_RANGE[0] + 1)
    )
