"""A minimal discrete-event simulation core.

Deliberately tiny: a priority queue of timestamped events with stable
FIFO ordering for ties. The block-level simulators push unit-completion
events and advance a global clock; nothing more is needed to reproduce
the template's timing behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True)
class Event:
    """One scheduled occurrence."""

    time: float
    sequence: int = field(compare=True)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Stable time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def push(self, time: float, payload: Any = None) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule event in the past ({time} < {self.now})")
        heapq.heappush(self._heap, Event(time, next(self._counter), payload))

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
