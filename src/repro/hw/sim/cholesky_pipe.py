"""Event-level simulation of the Cholesky block (Fig. 9 / Fig. 10).

One Evaluate unit issues iterations back to back (E cycles each); ``s``
time-multiplexed Update units apply the trailing-matrix downdates. A new
round starts only when the Evaluate unit and at least one Update unit
are free — the structural hazard that produces the round timeline of
Fig. 10 and the analytical form of Equ. 7.

The simulator can run in two modes: *shape* mode (sizes only) and
*functional* mode, where it actually factors a matrix through
:func:`repro.linalg.cholesky.cholesky_evaluate_update` and derives the
per-iteration update work from the real operation counts, tying timing
and semantics together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.latency import EVALUATE_LATENCY
from repro.linalg.cholesky import cholesky_evaluate_update


@dataclass
class CholeskyTimeline:
    """Simulated execution record."""

    total_cycles: float
    rounds: list[tuple[float, float]] = field(default_factory=list)  # (start, end)
    factor: np.ndarray | None = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def simulate_cholesky(
    m: int | None = None,
    s: int = 8,
    evaluate_latency: float = EVALUATE_LATENCY,
    matrix: np.ndarray | None = None,
) -> CholeskyTimeline:
    """Simulate the Evaluate/Update timeline for an m x m factorization.

    Args:
        m: matrix dimension (shape mode). Ignored when ``matrix`` given.
        s: number of Update units.
        evaluate_latency: E, cycles per Evaluate.
        matrix: optional SPD matrix to factor functionally; the update
            work then comes from the measured per-iteration op counts.
    """
    if s < 1:
        raise ConfigurationError("s must be >= 1")
    factor = None
    if matrix is not None:
        factor, op_counts = cholesky_evaluate_update(np.asarray(matrix, dtype=float))
        update_work = [float(up) for _, up in op_counts]
        m = len(update_work)
    else:
        if m is None or m < 1:
            raise ConfigurationError("need m >= 1 (or a matrix)")
        update_work = [float((m - i - 1) * (m - i)) / 2.0 for i in range(m)]

    unit_free = [0.0] * s
    evaluate_free = 0.0
    rounds: list[tuple[float, float]] = []

    iteration = 0
    while iteration < m:
        chunk = list(range(iteration, min(iteration + s, m)))
        start = max(evaluate_free, min(unit_free))
        round_end = start
        for unit, i in enumerate(chunk):
            evaluate_done = start + (unit + 1) * evaluate_latency
            unit_free[unit] = evaluate_done + update_work[i]
            round_end = max(round_end, unit_free[unit])
        evaluate_free = start + len(chunk) * evaluate_latency
        rounds.append((start, round_end))
        iteration += len(chunk)

    total = max(max(unit_free), evaluate_free)
    return CholeskyTimeline(total_cycles=total, rounds=rounds, factor=factor)
