"""Cycle-level discrete-event simulation of the accelerator template.

The analytical models of :mod:`repro.hw.latency` are closed forms; this
package *simulates* the same hardware at event granularity — the
Evaluate/Update rounds of Fig. 10, the feature-stationary Jacobian
pipeline with its FIFO (Sec. 4.2), and the per-feature D-type Schur
pipeline — and serves as the validation the paper obtained from Vivado
timing. Tests assert the analytical forms match the simulated cycles.
"""

from repro.hw.sim.engine import Event, EventQueue
from repro.hw.sim.cholesky_pipe import CholeskyTimeline, simulate_cholesky
from repro.hw.sim.jacobian_pipe import JacobianPipeline, simulate_jacobian_pipeline
from repro.hw.sim.accelerator import AcceleratorSim, WindowExecution
from repro.hw.sim.trace import TraceSimulation, simulate_trace

__all__ = [
    "Event",
    "EventQueue",
    "CholeskyTimeline",
    "simulate_cholesky",
    "JacobianPipeline",
    "simulate_jacobian_pipeline",
    "AcceleratorSim",
    "WindowExecution",
    "TraceSimulation",
    "simulate_trace",
]
