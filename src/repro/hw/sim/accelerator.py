"""Whole-accelerator cycle simulation of one sliding window.

Chains the block-level simulators along the Fig. 5 data flow: ``Iter``
NLS passes (Jacobian/D-Schur feature pipeline, then Cholesky, then back
substitution) followed by marginalization (Jacobians, D-Schur, Cholesky,
M-type Schur). Produces a per-phase cycle breakdown and, combined with
the power model, per-window energy — the quantity every Sec. 7
experiment ultimately reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import (
    backsub_latency,
    dschur_feature_latency,
    jacobian_feature_latency,
    mschur_latency,
)
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.hw.sim.cholesky_pipe import simulate_cholesky
from repro.hw.sim.jacobian_pipe import JacobianPipeline, simulate_jacobian_pipeline


@dataclass
class WindowExecution:
    """Cycle breakdown of one simulated window."""

    phase_cycles: dict[str, float] = field(default_factory=dict)
    total_cycles: float = 0.0
    seconds: float = 0.0
    energy_j: float = 0.0


class AcceleratorSim:
    """Cycle-level simulator of one configured accelerator instance."""

    def __init__(
        self,
        config: HardwareConfig,
        platform: FpgaPlatform = ZC706,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
    ) -> None:
        self.config = config
        self.platform = platform
        self.power_model = power_model

    def _feature_phase_cycles(
        self, stats: WindowStats, observation_counts: np.ndarray
    ) -> float:
        """The pipelined Jacobian + D-type Schur pass over all features.

        The two blocks are pipelined across feature points (Sec. 4.1),
        so the phase throughput is set by the slower of the two.
        """
        jac = simulate_jacobian_pipeline(observation_counts, JacobianPipeline())
        dschur_per_feature = dschur_feature_latency(
            stats.avg_observations, self.config.nd
        )
        dschur_total = dschur_per_feature * observation_counts.size
        # Pipelined: total is the max of the stages plus one stage fill.
        return max(jac.total_cycles, dschur_total) + dschur_per_feature

    def run_window(
        self,
        stats: WindowStats,
        iterations: int = 6,
        observation_counts: np.ndarray | None = None,
        seed: int = 0,
    ) -> WindowExecution:
        """Simulate one window; observation counts default to a profile-
        shaped random draw around the window's mean."""
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        a = max(stats.num_features, 1)
        if observation_counts is None:
            rng = np.random.default_rng(seed)
            mean = max(stats.avg_observations, 1.0)
            observation_counts = np.clip(
                rng.poisson(mean, size=a), 1, None
            ).astype(float)
        else:
            observation_counts = np.asarray(observation_counts, dtype=float)

        q = stats.state_size * max(stats.num_keyframes, 1)
        execution = WindowExecution()

        feature_phase = self._feature_phase_cycles(stats, observation_counts)
        cholesky = simulate_cholesky(m=q, s=self.config.s).total_cycles
        backsub = backsub_latency(stats)
        nls = feature_phase + cholesky + backsub
        execution.phase_cycles["nls-feature-pipeline"] = feature_phase * iterations
        execution.phase_cycles["nls-cholesky"] = cholesky * iterations
        execution.phase_cycles["nls-backsub"] = backsub * iterations

        am = max(stats.num_marginalized, 1)
        marg_jac = am * jacobian_feature_latency(stats.avg_observations)
        marg_dschur = am * dschur_feature_latency(stats.avg_observations, self.config.nd)
        marg_chol = simulate_cholesky(m=q, s=self.config.s).total_cycles
        marg_mschur = mschur_latency(stats, self.config.nm)
        execution.phase_cycles["marg-jacobian"] = marg_jac
        execution.phase_cycles["marg-dschur"] = marg_dschur
        execution.phase_cycles["marg-cholesky"] = marg_chol
        execution.phase_cycles["marg-mschur"] = marg_mschur

        execution.total_cycles = iterations * nls + marg_jac + marg_dschur + marg_chol + marg_mschur
        execution.seconds = execution.total_cycles / self.platform.frequency_hz
        execution.energy_j = execution.seconds * self.power_model.power(self.config)
        return execution
