"""Functional accelerator execution: numbers *and* cycles together.

The timing simulators count cycles; this module executes a real window's
NLS iteration along the exact hardware data path — VJac/IJac
linearization, A/b preparation, the D-type Schur elimination, the
Evaluate/Update Cholesky (in functional mode, factoring the actual
matrix while counting its rounds), forward/backward substitution, and
landmark back-substitution — and returns both the numerical solution and
the cycle cost. Tests assert the solution is bit-level identical to the
software solver's, which is the correctness contract behind every
speedup claim: the accelerator computes the same update the algorithm
specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import (
    backsub_latency,
    dschur_feature_latency,
    jacobian_feature_latency,
)
from repro.hw.sim.cholesky_pipe import simulate_cholesky
from repro.linalg.cholesky import solve_cholesky
from repro.linalg.schur import d_type_back_substitute, d_type_schur
from repro.slam.problem import WindowProblem, _U_FLOOR


@dataclass
class FunctionalExecution:
    """One NLS iteration executed on the modeled hardware."""

    d_lambda: np.ndarray
    d_state: np.ndarray
    cycles: float
    seconds: float
    cholesky_rounds: int


def run_iteration_functional(
    problem: WindowProblem,
    config: HardwareConfig,
    damping: float = 0.0,
    platform: FpgaPlatform = ZC706,
) -> FunctionalExecution:
    """Execute one NLS iteration along the accelerator data path.

    The numerical result matches
    :meth:`repro.slam.problem.LinearSystem.solve` exactly — both paths
    run the same kernels in the same order; the hardware path
    additionally runs the Cholesky through the Fig. 10 Evaluate/Update
    timeline to obtain its true round-level cycle count.
    """
    system = problem.build_linear_system()
    stats_features = system.num_features

    # Feature phase: VJac production pipelined with the D-type Schur
    # (Equ. 14's max term), per feature point.
    avg_obs = (
        sum(1 for _ in problem.visual_factors) / max(stats_features, 1)
    )
    per_feature = max(
        jacobian_feature_latency(avg_obs),
        dschur_feature_latency(avg_obs, config.nd),
    )
    cycles = stats_features * per_feature

    # The actual elimination, on the actual numbers.
    u_damped = np.maximum(system.u_diag, _U_FLOOR) + damping
    v_damped = system.v_block + damping * np.eye(system.v_block.shape[0])
    reduced, reduced_rhs = d_type_schur(
        v_damped, system.w_block, u_damped, b_x=system.b_x, b_y=system.b_y
    )
    assert reduced_rhs is not None

    # Functional Cholesky: factor the real reduced matrix while the
    # Evaluate/Update timeline counts its cycles.
    jitter = 1e-9
    timeline = simulate_cholesky(
        s=config.s, matrix=reduced + jitter * np.eye(reduced.shape[0])
    )
    cycles += timeline.total_cycles
    d_state = solve_cholesky(timeline.factor, reduced_rhs)
    d_lambda = d_type_back_substitute(system.w_block, u_damped, system.b_x, d_state)

    # Back-substitution block (fixed-function).
    from repro.data.stats import WindowStats

    pseudo_stats = WindowStats(
        num_features=max(stats_features, 1),
        avg_observations=avg_obs,
        num_keyframes=max(system.num_frames, 1),
        num_marginalized=0,
    )
    cycles += backsub_latency(pseudo_stats)

    return FunctionalExecution(
        d_lambda=d_lambda,
        d_state=d_state,
        cycles=cycles,
        seconds=cycles / platform.frequency_hz,
        cholesky_rounds=timeline.num_rounds,
    )
