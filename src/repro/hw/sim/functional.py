"""Functional accelerator execution: numbers *and* cycles together.

The timing simulators count cycles; this module executes a real window's
NLS iteration along the exact hardware data path — VJac/IJac
linearization, A/b preparation, the D-type Schur elimination, the
Evaluate/Update Cholesky (in functional mode, factoring the actual
matrix while counting its rounds), forward/backward substitution, and
landmark back-substitution — and returns both the numerical solution and
the cycle cost. Tests assert the solution is bit-level identical to the
software solver's, which is the correctness contract behind every
speedup claim: the accelerator computes the same update the algorithm
specifies.

Since the SolverPlan refactor the *numbers* come from the very same
:class:`repro.linalg.plan.SolverPlan` the software solver executes —
there is one structured-solve implementation in the codebase, not a
hardware copy of it — while the Fig. 10 Evaluate/Update timeline still
factors the (intact) reduced matrix the plan produced to obtain the
round-level cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import (
    backsub_latency,
    dschur_feature_latency,
    jacobian_feature_latency,
)
from repro.hw.sim.cholesky_pipe import simulate_cholesky
from repro.linalg.plan import SolverPlan, default_plan_cache
from repro.slam.problem import WindowProblem


@dataclass
class FunctionalExecution:
    """One NLS iteration executed on the modeled hardware."""

    d_lambda: np.ndarray
    d_state: np.ndarray
    cycles: float
    seconds: float
    cholesky_rounds: int


def run_iteration_functional(
    problem: WindowProblem,
    config: HardwareConfig,
    damping: float = 0.0,
    platform: FpgaPlatform = ZC706,
    plan: SolverPlan | None = None,
) -> FunctionalExecution:
    """Execute one NLS iteration along the accelerator data path.

    The numerical result matches
    :meth:`repro.slam.problem.LinearSystem.solve` exactly — both paths
    execute the *same* :class:`~repro.linalg.plan.SolverPlan` object (or
    one of identical structure from the shared cache); the hardware path
    additionally runs the Cholesky through the Fig. 10 Evaluate/Update
    timeline to obtain its true round-level cycle count.

    Args:
        plan: optionally the exact plan the serving tier / software
            solver holds; when None the process-wide plan cache supplies
            one for the window's structure.
    """
    system = problem.build_linear_system()
    stats_features = system.num_features

    # Feature phase: VJac production pipelined with the D-type Schur
    # (Equ. 14's max term), per feature point.
    avg_obs = (
        sum(1 for _ in problem.visual_factors) / max(stats_features, 1)
    )
    per_feature = max(
        jacobian_feature_latency(avg_obs),
        dschur_feature_latency(avg_obs, config.nd),
    )
    cycles = stats_features * per_feature

    # The actual elimination, on the actual numbers — through the shared
    # solve plan (copy=True: the timeline below reuses the plan arenas'
    # reduced matrix, and callers keep the result).
    if plan is None:
        plan = default_plan_cache().get(stats_features, system.b_y.shape[0])
    d_lambda, d_state = system.solve(damping=damping, plan=plan, copy=True)

    # Functional Cholesky: factor the reduced matrix the plan actually
    # solved (including any failure-triggered jitter) while the
    # Evaluate/Update timeline counts its cycles. ``plan.reduced`` is
    # left intact by execute() precisely for this.
    factored = plan.reduced
    if plan.last_stats.jitter_applied:
        factored = plan.reduced.copy()
        factored.flat[:: factored.shape[0] + 1] += plan.last_stats.jitter
    timeline = simulate_cholesky(s=config.s, matrix=factored)
    cycles += timeline.total_cycles

    # Back-substitution block (fixed-function).
    from repro.data.stats import WindowStats

    pseudo_stats = WindowStats(
        num_features=max(stats_features, 1),
        avg_observations=avg_obs,
        num_keyframes=max(system.num_frames, 1),
        num_marginalized=0,
    )
    cycles += backsub_latency(pseudo_stats)

    return FunctionalExecution(
        d_lambda=d_lambda,
        d_state=d_state,
        cycles=cycles,
        seconds=cycles / platform.frequency_hz,
        cholesky_rounds=timeline.num_rounds,
    )
