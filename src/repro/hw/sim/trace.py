"""Trace-driven co-simulation: replay an estimator run on a design.

Feeds every window of a real estimator run — its actual feature counts,
observation statistics, and iteration counts — through the cycle-level
:class:`~repro.hw.sim.accelerator.AcceleratorSim`, producing the
per-window latency/energy series the on-vehicle deployment would see and
a comparison against the closed-form model (the validation role Vivado
timing played for the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import window_latency_cycles
from repro.hw.sim.accelerator import AcceleratorSim


@dataclass
class TraceSimulation:
    """Per-window co-simulation results over one estimator run."""

    seconds: list[float] = field(default_factory=list)
    energies_j: list[float] = field(default_factory=list)
    simulated_cycles: list[float] = field(default_factory=list)
    analytical_cycles: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds))

    @property
    def total_energy_j(self) -> float:
        return float(sum(self.energies_j))

    @property
    def worst_case_seconds(self) -> float:
        return float(max(self.seconds)) if self.seconds else 0.0

    def model_agreement(self) -> float:
        """Mean |simulated - analytical| / analytical over the trace.

        Windows whose analytical cycle count is zero (degenerate
        workloads the closed-form model prices at nothing) are excluded
        rather than allowed to poison the mean with a division by zero.
        """
        sim = np.asarray(self.simulated_cycles)
        model = np.asarray(self.analytical_cycles)
        defined = model != 0.0
        if not defined.any():
            return 0.0
        return float(
            np.mean(np.abs(sim[defined] - model[defined]) / model[defined])
        )


def simulate_windows(
    workloads,
    config: HardwareConfig,
    platform: FpgaPlatform = ZC706,
    seed: int = 0,
) -> TraceSimulation:
    """Replay a series of per-window workloads on a design.

    ``workloads`` is an iterable of ``(WindowStats, iterations)`` pairs —
    the stage-level interface the execution engine drives
    (:class:`repro.engine.stages.TraceStage`). Windows with no features
    are skipped but still advance the per-window seed, so a trace keeps
    its draws regardless of how many warm-up windows precede it.
    """
    sim = AcceleratorSim(config, platform)
    trace = TraceSimulation()
    for index, (stats, iterations) in enumerate(workloads):
        if stats.num_features < 1:
            continue
        iterations = max(iterations, 1)
        execution = sim.run_window(
            stats, iterations=iterations, seed=seed + index
        )
        trace.seconds.append(execution.seconds)
        trace.energies_j.append(execution.energy_j)
        trace.simulated_cycles.append(execution.total_cycles)
        trace.analytical_cycles.append(
            window_latency_cycles(stats, config, iterations)
        )
    return trace


def simulate_trace(
    run,
    config: HardwareConfig,
    platform: FpgaPlatform = ZC706,
    seed: int = 0,
) -> TraceSimulation:
    """Replay a :class:`~repro.slam.estimator.RunResult` on a design.

    Each window uses the iteration count the estimator actually spent
    (the run-time system's decisions therefore flow straight into the
    hardware timing) and a seeded per-window observation-count draw.
    """
    return simulate_windows(
        [(window.stats, window.iterations) for window in run.windows],
        config,
        platform=platform,
        seed=seed,
    )
