"""Event-level simulation of the Jacobian block (Fig. 7, Sec. 4.2).

The Feature block (producer) streams feature-point coordinates through a
FIFO into the Observation block (consumer), which computes one Jacobian
matrix element per observation every ``Co`` cycles under the
feature-stationary data flow. The Feature block is statically pipelined
for the *average* observation count — when a feature has more
observations than average the FIFO absorbs the imbalance, and when it
runs dry/full the pipeline stalls. The simulator measures exactly those
stalls, validating the statistically-balanced design decision and the
``L_jac = No * Co`` average-case model of Equ. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.latency import CO_OBSERVATION


@dataclass(frozen=True)
class JacobianPipeline:
    """Static pipeline configuration of the Jacobian block.

    Attributes:
        co: per-observation cycles of the Observation block.
        feature_latency: total latency Lf of the Feature block for one
            feature point (fixed work: world-coordinate computation).
        fifo_depth: FIFO slots between Feature and Observation blocks.
    """

    co: float = float(CO_OBSERVATION)
    feature_latency: float = 600.0
    fifo_depth: int = 4

    def stage_count(self, avg_observations: float) -> int:
        """The paper's static pipelining rule: Lf / (No * Co) stages."""
        if avg_observations <= 0:
            raise ConfigurationError("avg_observations must be positive")
        return max(int(np.ceil(self.feature_latency / (avg_observations * self.co))), 1)


@dataclass
class JacobianExecution:
    total_cycles: float
    stall_cycles: float
    feature_issue_times: list[float]


def simulate_jacobian_pipeline(
    observation_counts: list[int] | np.ndarray,
    pipeline: JacobianPipeline | None = None,
) -> JacobianExecution:
    """Simulate the producer-consumer pipeline over a feature stream.

    Args:
        observation_counts: per-feature observation counts (the actual,
            non-deterministic workload the static design must absorb).
        pipeline: static configuration; defaults sized for the stream's
            own mean (the offline-profiled statistic).
    """
    counts = np.asarray(observation_counts, dtype=float)
    if counts.size == 0 or np.any(counts < 1):
        raise ConfigurationError("need at least one observation per feature")
    mean_obs = float(counts.mean())
    pipeline = pipeline or JacobianPipeline()

    stages = pipeline.stage_count(mean_obs)
    issue_interval = pipeline.feature_latency / stages  # producer throughput

    issue_times: list[float] = []
    consumer_free = 0.0
    total_stall = 0.0
    # done_times[i]: when feature i's Jacobian row finished in the
    # Observation block; used for FIFO backpressure.
    done_times: list[float] = []

    for i, count in enumerate(counts):
        earliest_issue = issue_times[-1] + issue_interval if issue_times else 0.0
        # FIFO backpressure: the producer may run at most fifo_depth
        # features ahead of the consumer.
        if i > pipeline.fifo_depth:
            earliest_issue = max(earliest_issue, done_times[i - pipeline.fifo_depth - 1])
        issue_times.append(earliest_issue)
        ready = earliest_issue + pipeline.feature_latency
        start = max(ready, consumer_free)
        total_stall += max(ready - consumer_free, 0.0) if i > 0 else 0.0
        consumer_free = start + count * pipeline.co
        done_times.append(consumer_free)

    return JacobianExecution(
        total_cycles=consumer_free,
        stall_cycles=total_stall,
        feature_issue_times=issue_times,
    )
