"""Jacobian-block dataflow ablation (Sec. 4.2's design decision).

The Jacobian unit computes one matrix element per <feature, observation>
pair. Two dataflows are possible:

* **feature-stationary** (the paper's choice, row-major): each feature
  point stays in the Observation block while its whole row is computed —
  the many features stream through a FIFO once, and the few keyframe
  rotation matrices are fetched per observation from a *small* RAM.
* **rotation-stationary** (column-major): each keyframe's rotation
  matrix stays while its column is computed — but then every observation
  must fetch its feature record from a *large* RAM sized for all the
  window's features.

The energy asymmetry comes from RAM access cost growing with array
capacity (longer word/bit lines, wider decoders): a typical window has
~10x more feature points than keyframes, so the feature store is two
orders of magnitude larger than the rotation store. This module
quantifies the argument the paper makes qualitatively ("the massive
amount of feature points would have to be accessed from a power-hungry
RAM").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError

# Words per record.
FEATURE_RECORD_WORDS = 8  # world coords + anchor info + bookkeeping
ROTATION_RECORD_WORDS = 9  # 3x3 rotation matrix

# Energy model, normalized to one FIFO word = 1.
FIFO_WORD_ENERGY = 1.0
RAM_BASE_WORD_ENERGY = 2.0
RAM_CAPACITY_SLOPE = 1.0 / 64.0  # extra energy per word of array capacity


def ram_word_energy(capacity_words: int) -> float:
    """Per-word read energy of a RAM holding ``capacity_words``."""
    return RAM_BASE_WORD_ENERGY + RAM_CAPACITY_SLOPE * capacity_words


@dataclass(frozen=True)
class DataflowCost:
    """Traffic and energy of one dataflow choice."""

    name: str
    fifo_words: float
    ram_words: float
    ram_capacity_words: int

    @property
    def energy(self) -> float:
        return (
            FIFO_WORD_ENERGY * self.fifo_words
            + ram_word_energy(self.ram_capacity_words) * self.ram_words
        )


def feature_stationary_cost(stats: WindowStats) -> DataflowCost:
    """Row-major: features via FIFO, rotations from the small RAM."""
    _check(stats)
    observations = _observations(stats)
    return DataflowCost(
        name="feature-stationary",
        fifo_words=stats.num_features * FEATURE_RECORD_WORDS,
        ram_words=observations * ROTATION_RECORD_WORDS,
        ram_capacity_words=stats.num_keyframes * ROTATION_RECORD_WORDS,
    )


def rotation_stationary_cost(stats: WindowStats) -> DataflowCost:
    """Column-major: rotations via FIFO, features from the large RAM."""
    _check(stats)
    observations = _observations(stats)
    return DataflowCost(
        name="rotation-stationary",
        fifo_words=stats.num_keyframes * ROTATION_RECORD_WORDS,
        # Every observation re-reads its feature record, plus the initial
        # fill of the feature store.
        ram_words=(observations + stats.num_features) * FEATURE_RECORD_WORDS,
        ram_capacity_words=stats.num_features * FEATURE_RECORD_WORDS,
    )


def dataflow_energy_ratio(stats: WindowStats) -> float:
    """Energy of rotation-stationary over feature-stationary (> 1 means
    the paper's choice wins)."""
    return rotation_stationary_cost(stats).energy / feature_stationary_cost(stats).energy


def _observations(stats: WindowStats) -> int:
    return stats.num_observations or int(
        round(stats.num_features * stats.avg_observations)
    )


def _check(stats: WindowStats) -> None:
    if stats.num_features < 1 or stats.num_keyframes < 1:
        raise ConfigurationError("need at least one feature and one keyframe")
