"""The analytical latency model (Equ. 6-10 and 13-15).

All latencies are in clock cycles at the platform frequency. The model
mirrors the paper exactly:

* Jacobian block (Equ. 6): ``L_jac = No * Co`` per feature under the
  statistically-balanced feature-stationary pipeline of Sec. 4.2.
* Cholesky block (Equ. 7-8): round-structured Evaluate/Update timeline
  of Fig. 10 with ``s`` time-multiplexed Update units.
* D-type Schur (Equ. 9): ``(6 No)^2 / nd`` per feature.
* M-type Schur (Equ. 10): the ``am``/``b``/``k``-parameterized form.
* End-to-end (Equ. 13-15): ``Iter`` pipelined NLS iterations plus
  marginalization.

Cycle-count constants (``CO_OBSERVATION``, ``EVALUATE_LATENCY``, ...)
are calibrated so that the synthesized High-Perf / Low-Power designs of
Tbl. 2 meet their 20 ms / 33 ms constraints on the reference workload —
the one absolute-scale calibration in the model (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706

# ----------------------------------------------------------------------
# Calibrated cycle constants (absolute scale; shapes come from the
# equations themselves).
# ----------------------------------------------------------------------

# Per-stage latency Co of the Observation block (Equ. 6): cycles to
# produce one Jacobian matrix element once the pipeline is full.
CO_OBSERVATION = 35
# Evaluate-phase latency E of the Cholesky block (sqrt + divide chain).
EVALUATE_LATENCY = 200
# Effective cycles per MAC issued in the Schur blocks (issue interval +
# operand fetch overhead of the time-multiplexed datapath).
CYCLES_PER_MAC = 10.0
# Fixed-function back-substitution: datapath width in MACs.
BACKSUB_WIDTH = 5

# The reference workload used for calibration and for sizing static
# designs: a classic full-scale window (the paper reports ~10x more
# features than keyframes and ~10x more observations than features).
REFERENCE_WORKLOAD = WindowStats(
    num_features=250,
    avg_observations=10.5,
    num_keyframes=15,
    num_marginalized=28,
    num_observations=2625,
)


def jacobian_feature_latency(avg_observations: float) -> float:
    """Equ. 6: L_jac = No * Co cycles per feature point."""
    if avg_observations < 0:
        raise ConfigurationError("avg_observations must be non-negative")
    return avg_observations * CO_OBSERVATION


def dschur_feature_latency(avg_observations: float, nd: int) -> float:
    """Equ. 9: L_DSchur(nd) = (6 No)^2 / nd cycles per feature point."""
    if nd < 1:
        raise ConfigurationError("nd must be >= 1")
    width = 6.0 * avg_observations
    return CYCLES_PER_MAC * width * width / nd


def cholesky_latency(m: int, s: int, evaluate_latency: float = EVALUATE_LATENCY) -> float:
    """Equ. 7-8: the round-structured Cholesky latency.

    L = sum_{k=0}^{floor(m/s)} max(s E, E + U(m_k)), m_k = m - s k - 1,

    where U(m_k) = m_k (m_k + 1) / 2 is the update work of the round's
    first iteration (the trailing symmetric half including its diagonal
    -- the exact per-iteration operation count measured by
    cholesky_evaluate_update, which the cycle simulator also uses; the
    paper's m_k (m_k - 1) / 2 differs only by the diagonal term).
    """
    if m < 1 or s < 1:
        raise ConfigurationError("need m >= 1 and s >= 1")
    total = 0.0
    for k in range(m // s + 1):
        m_k = m - s * k - 1
        if m_k < 0:
            break
        update_work = m_k * (m_k + 1) / 2.0
        total += max(s * evaluate_latency, evaluate_latency + update_work)
    return total


def mschur_latency(stats: WindowStats, nm: int) -> float:
    """Equ. 10: the M-type Schur latency.

    L ~= 15 am + am^2 + bk (15 + am)(6(b-1) + 9) + bk (6(b-1) + 9)^2,
    bk = (15 + am) / nm.
    """
    if nm < 1:
        raise ConfigurationError("nm must be >= 1")
    am = max(stats.num_marginalized, 1)
    b = max(stats.num_keyframes, 2)
    bk = (15.0 + am) / nm
    keep_width = 6.0 * (b - 1) + 9.0
    raw = (
        15.0 * am
        + am * am
        + bk * (15.0 + am) * keep_width
        + bk * keep_width * keep_width
    )
    return CYCLES_PER_MAC * raw


def backsub_latency(stats: WindowStats) -> float:
    """Fixed-function forward/backward substitution over the q x q factor."""
    q = stats.state_size * max(stats.num_keyframes, 1)
    return q * q / BACKSUB_WIDTH


def nls_iteration_latency(stats: WindowStats, config: HardwareConfig) -> float:
    """Equ. 14: one NLS iteration.

    L_NLS = a * max(L_jac, L_DSchur(nd)) + L_cholesky(s) + L_sub

    The max models the pipeline parallelism between the Jacobian and
    D-type Schur blocks across the a feature points.
    """
    a = max(stats.num_features, 1)
    per_feature = max(
        jacobian_feature_latency(stats.avg_observations),
        dschur_feature_latency(stats.avg_observations, config.nd),
    )
    q = stats.state_size * max(stats.num_keyframes, 1)
    return a * per_feature + cholesky_latency(q, config.s) + backsub_latency(stats)


def marginalization_latency(stats: WindowStats, config: HardwareConfig) -> float:
    """Equ. 15: marginalization = am Jacobians + D-Schur + Cholesky + M-Schur."""
    am = max(stats.num_marginalized, 1)
    q = stats.state_size * max(stats.num_keyframes, 1)
    return (
        am * jacobian_feature_latency(stats.avg_observations)
        + dschur_feature_latency(stats.avg_observations, config.nd) * am
        + cholesky_latency(q, config.s)
        + mschur_latency(stats, config.nm)
    )


def window_latency_cycles(
    stats: WindowStats, config: HardwareConfig, iterations: int = 6
) -> float:
    """Equ. 13: Lat = Iter * L_NLS + L_marg, in cycles."""
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    return iterations * nls_iteration_latency(stats, config) + marginalization_latency(
        stats, config
    )


def window_latency_seconds(
    stats: WindowStats,
    config: HardwareConfig,
    iterations: int = 6,
    platform: FpgaPlatform = ZC706,
) -> float:
    """End-to-end window latency in seconds at the platform clock."""
    return window_latency_cycles(stats, config, iterations) / platform.frequency_hz


@dataclass(frozen=True)
class LatencyModel:
    """Bound (workload, iteration) latency queries over configs.

    A convenience wrapper used by the synthesizer: freezes the workload
    statistics and iteration count so the optimizer sees latency purely
    as a function of (nd, nm, s).
    """

    stats: WindowStats = REFERENCE_WORKLOAD
    iterations: int = 6
    platform: FpgaPlatform = ZC706

    def cycles(self, config: HardwareConfig) -> float:
        return window_latency_cycles(self.stats, config, self.iterations)

    def seconds(self, config: HardwareConfig) -> float:
        return window_latency_seconds(
            self.stats, config, self.iterations, self.platform
        )
