"""The linear power model (Equ. 17) with offline regression fitting.

Power(nd, nm, s) = P0 + nd Pd + nm Pm + s Ps. FPGA power tracks resource
utilization, so the per-knob coefficients are fitted per platform by
regression over synthesized samples rather than measured per block —
the strategy the paper adopts because per-block power on an FPGA fabric
is impractical to measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel


@dataclass(frozen=True)
class PowerModel:
    """P = P0 + nd Pd + nm Pm + s Ps, in watts."""

    base: float = 1.20
    per_nd: float = 0.055
    per_nm: float = 0.065
    per_s: float = 0.012

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_nd < 0 or self.per_nm < 0 or self.per_s < 0:
            raise ConfigurationError("power coefficients must be non-negative")

    def power(self, config: HardwareConfig) -> float:
        return (
            self.base
            + self.per_nd * config.nd
            + self.per_nm * config.nm
            + self.per_s * config.s
        )

    def gated_power(self, static: HardwareConfig, active: HardwareConfig) -> float:
        """Power when the run-time system clock-gates down to ``active``.

        The fabric still holds the static design; clock gating removes
        the dynamic power of the disabled units but a gated unit retains
        a small residual (clock tree + leakage), modeled at 10%.
        """
        if not active.dominates(static):
            raise ConfigurationError(
                "runtime configuration must not exceed the static design"
            )
        residual = 0.10
        return (
            self.base
            + self.per_nd * (active.nd + residual * (static.nd - active.nd))
            + self.per_nm * (active.nm + residual * (static.nm - active.nm))
            + self.per_s * (active.s + residual * (static.s - active.s))
        )


# Calibrated so the Tbl. 2 designs span the paper's ~2 W gap and the
# Fig. 14 frontier covers roughly 2.5-5 W.
DEFAULT_POWER_MODEL = PowerModel()


def fit_power_model(
    configs: list[HardwareConfig], powers: list[float]
) -> PowerModel:
    """Least-squares regression of the four power coefficients."""
    if len(configs) < 4:
        raise ConfigurationError("need at least 4 samples to fit 4 coefficients")
    if len(configs) != len(powers):
        raise ConfigurationError("configs and powers must have equal length")
    design = np.array([[1.0, c.nd, c.nm, c.s] for c in configs])
    coeffs, *_ = np.linalg.lstsq(design, np.asarray(powers, dtype=float), rcond=None)
    coeffs = np.maximum(coeffs, 0.0)
    return PowerModel(*[float(x) for x in coeffs])


def synthetic_power_samples(
    platform: FpgaPlatform = ZC706,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    seed: int = 0,
    count: int = 32,
) -> tuple[list[HardwareConfig], list[float]]:
    """Generate (config, power) samples from a utilization-driven power
    surrogate — stands in for the Vivado power-analysis runs the paper
    regresses against when porting to a new FPGA."""
    from repro.hw.config import ND_RANGE, NM_RANGE, S_RANGE

    rng = np.random.default_rng(seed)
    configs, powers = [], []
    for _ in range(count):
        config = HardwareConfig(
            nd=int(rng.integers(ND_RANGE[0], ND_RANGE[1] + 1)),
            nm=int(rng.integers(NM_RANGE[0], NM_RANGE[1] + 1)),
            s=int(rng.integers(S_RANGE[0], S_RANGE[1] + 1)),
        )
        utilization = resource_model.utilization(config, platform)
        # Utilization-proportional dynamic power + measurement noise.
        power = (
            1.0
            + 2.4 * utilization["dsp"]
            + 1.1 * utilization["lut"]
            + 0.8 * utilization["bram"]
            + rng.normal(scale=0.03)
        )
        configs.append(config)
        powers.append(float(power))
    return configs, powers
