"""The linear resource model (Equ. 16).

Res(nd, nm, s) = R0 + nd Rd + nm Rm + s Rs, independently for each of
the four FPGA resource types (LUT, FF, BRAM, DSP). A design fits only if
*every* resource type fits — exceeding even one means the design cannot
be instantiated.

The default coefficients are calibrated against the paper's Tbl. 2: the
High-Perf (nd=28, nm=19, s=97) and Low-Power (nd=21, nm=8, s=34) designs
reproduce the published utilization numbers on the ZC706 to within a few
percent, and the per-knob sensitivities follow Fig. 13 (s dominates DSP
demand; DSP is the scarcest resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import RESOURCE_KINDS, FpgaPlatform
from repro.linalg.smatrix import SMatrixLayout


@dataclass(frozen=True)
class LinearResource:
    """One resource type's (R0, Rd, Rm, Rs) coefficients."""

    base: float
    per_nd: float
    per_nm: float
    per_s: float

    def evaluate(self, config: HardwareConfig) -> float:
        return (
            self.base
            + self.per_nd * config.nd
            + self.per_nm * config.nm
            + self.per_s * config.s
        )


@dataclass(frozen=True)
class ResourceModel:
    """Per-resource linear models plus fit/fit-check helpers."""

    lut: LinearResource
    ff: LinearResource
    bram: LinearResource
    dsp: LinearResource

    def usage(self, config: HardwareConfig) -> dict[str, float]:
        return {kind: getattr(self, kind).evaluate(config) for kind in RESOURCE_KINDS}

    def utilization(self, config: HardwareConfig, platform: FpgaPlatform) -> dict[str, float]:
        """Fraction of each resource consumed on the given platform."""
        usage = self.usage(config)
        return {kind: usage[kind] / platform.capacity(kind) for kind in RESOURCE_KINDS}

    def fits(self, config: HardwareConfig, platform: FpgaPlatform,
             budget: float = 1.0) -> bool:
        """True if every resource stays within ``budget`` x capacity."""
        return all(u <= budget for u in self.utilization(config, platform).values())

    def binding_resource(self, config: HardwareConfig, platform: FpgaPlatform) -> str:
        """The resource type with the highest utilization (the limiter)."""
        utilization = self.utilization(config, platform)
        return max(utilization, key=utilization.get)


# Calibration targets (paper Tbl. 2, ZC706):
#   High-Perf (28, 19, 97): LUT 136432, FF 163006, BRAM 255.5, DSP 849
#   Low-Power (21,  8, 34): LUT  95777, FF 126670, BRAM 146.0, DSP 442
# Two designs under-determine four coefficients per resource; the spare
# freedom is fixed by Fig. 13's sensitivities (s moves DSP/BRAM hardest,
# nd and nm move LUT/FF comparably per MAC).
DEFAULT_RESOURCE_MODEL = ResourceModel(
    lut=LinearResource(base=51_000, per_nd=900, per_nm=750, per_s=475),
    ff=LinearResource(base=82_500, per_nd=1_100, per_nm=950, per_s=525),
    bram=LinearResource(base=78.0, per_nd=1.6, per_nm=1.4, per_s=1.10),
    dsp=LinearResource(base=100.0, per_nd=6.0, per_nm=5.0, per_s=4.9),
)


def fit_linear_model(
    configs: list[HardwareConfig], values: list[float]
) -> LinearResource:
    """Least-squares fit of (R0, Rd, Rm, Rs) to measured samples.

    This is the offline regression the paper uses to adapt the model to
    a new FPGA platform without measuring individual blocks.
    """
    if len(configs) < 4:
        raise ConfigurationError("need at least 4 samples to fit 4 coefficients")
    if len(configs) != len(values):
        raise ConfigurationError("configs and values must have equal length")
    design = np.array([[1.0, c.nd, c.nm, c.s] for c in configs])
    target = np.asarray(values, dtype=float)
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return LinearResource(*[float(x) for x in coeffs])


def buffer_bram_blocks(k: int = 15, b: int = 15, word_bits: int = 32) -> float:
    """36Kb BRAM blocks needed for the Linear System Parameter Buffer
    under the Sec. 3.3 compact layout (part of the base BRAM cost)."""
    words = SMatrixLayout(k=k, b=b).compact_words
    bits = words * word_bits
    return bits / 36_864  # 36Kb per block
