"""FPGA platform catalog.

Resource totals are the published device capacities of the three boards
evaluated in the paper (Sec. 7.1 and 7.7): the Zynq-7000 ZC706 (XC7Z045),
a Kintex-7 XC7K160T, and a Virtex-7 XC7VX690T. All Archytas designs run
at a fixed 143 MHz, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

RESOURCE_KINDS = ("lut", "ff", "bram", "dsp")


@dataclass(frozen=True)
class FpgaPlatform:
    """One FPGA device: name, resource capacities, clock frequency."""

    name: str
    lut: int
    ff: int
    bram: float  # 36Kb block equivalents
    dsp: int
    frequency_hz: float = 143e6

    def __post_init__(self) -> None:
        for kind in RESOURCE_KINDS:
            if getattr(self, kind) <= 0:
                raise ConfigurationError(f"{self.name}: {kind} capacity must be positive")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")

    def capacity(self, kind: str) -> float:
        if kind not in RESOURCE_KINDS:
            raise ConfigurationError(f"unknown resource kind {kind!r}")
        return float(getattr(self, kind))

    def capacities(self) -> dict[str, float]:
        return {kind: self.capacity(kind) for kind in RESOURCE_KINDS}


ZC706 = FpgaPlatform(name="Xilinx Zynq-7000 ZC706 (XC7Z045)",
                     lut=218_600, ff=437_200, bram=545, dsp=900)

KINTEX7_160T = FpgaPlatform(name="Xilinx Kintex-7 XC7K160T",
                            lut=101_400, ff=202_800, bram=325, dsp=600)

VIRTEX7_690T = FpgaPlatform(name="Xilinx Virtex-7 XC7VX690T",
                            lut=433_200, ff=866_400, bram=1470, dsp=3600)

FPGA_CATALOG: dict[str, FpgaPlatform] = {
    "zc706": ZC706,
    "kintex7-160t": KINTEX7_160T,
    "virtex7-690t": VIRTEX7_690T,
}
