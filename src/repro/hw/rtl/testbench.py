"""Testbench emission for the generated accelerator.

Produces a self-checking Verilog testbench that exercises the host
interface of ``archytas_top``: reset, a run-time reconfiguration write
(the three numbers of Sec. 6.2), a window trigger, and a timeout-guarded
wait for ``window_done``. A downstream user drops the design plus this
file into any Verilog simulator.
"""

from __future__ import annotations

from repro.hw.config import HardwareConfig

_TB_TEMPLATE = """\
// archytas_tb.v -- self-checking testbench for the generated design.
`timescale 1ns/1ps

module archytas_tb;
  reg clk = 1'b0;
  reg rst_n = 1'b0;
  reg cfg_we = 1'b0;
  reg [7:0] cfg_nd_active = 8'd__ND__;
  reg [7:0] cfg_nm_active = 8'd__NM__;
  reg [7:0] cfg_s_active  = 8'd__S__;
  reg window_start = 1'b0;
  wire window_done;
  integer timeout;

  archytas_top dut (
    .clk(clk), .rst_n(rst_n),
    .cfg_we(cfg_we),
    .cfg_nd_active(cfg_nd_active),
    .cfg_nm_active(cfg_nm_active),
    .cfg_s_active(cfg_s_active),
    .window_start(window_start),
    .window_done(window_done)
  );

  always #3.5 clk = ~clk;  // ~143 MHz

  initial begin
    // Reset.
    repeat (4) @(posedge clk);
    rst_n = 1'b1;
    repeat (2) @(posedge clk);

    // Run-time reconfiguration: gate down to half the units.
    cfg_nd_active = 8'd__ND_HALF__;
    cfg_nm_active = 8'd__NM_HALF__;
    cfg_s_active  = 8'd__S_HALF__;
    cfg_we = 1'b1;
    @(posedge clk);
    cfg_we = 1'b0;

    // Trigger one sliding window.
    window_start = 1'b1;
    @(posedge clk);
    window_start = 1'b0;

    // Self-check: window_done must assert within the timeout.
    timeout = 0;
    while (!window_done && timeout < 1000) begin
      @(posedge clk);
      timeout = timeout + 1;
    end
    if (!window_done) begin
      $display("FAIL: window_done never asserted");
      $fatal(1);
    end
    $display("PASS: window completed after %0d cycles", timeout);
    $finish;
  end
endmodule
"""


def emit_testbench(config: HardwareConfig) -> str:
    """Emit the testbench for a configured design."""
    return (
        _TB_TEMPLATE
        .replace("__ND_HALF__", str(max(config.nd // 2, 1)))
        .replace("__NM_HALF__", str(max(config.nm // 2, 1)))
        .replace("__S_HALF__", str(max(config.s // 2, 1)))
        .replace("__ND__", str(config.nd))
        .replace("__NM__", str(config.nm))
        .replace("__S__", str(config.s))
    )
