"""Synthesizable Verilog emission for a configured accelerator."""

from repro.hw.rtl.emitter import emit_design, emit_module
from repro.hw.rtl.lint import LintReport, lint_design, lint_source
from repro.hw.rtl.testbench import emit_testbench

__all__ = [
    "emit_design",
    "emit_module",
    "LintReport",
    "lint_design",
    "lint_source",
    "emit_testbench",
]
