"""A structural Verilog checker for the emitted RTL.

Not a full parser — a deliberately small structural linter that catches
the classes of emission bugs a template generator can introduce:
unbalanced module/endmodule and begin/end pairs, generate blocks without
endgenerate, unmatched brackets/parentheses, undeclared module
instantiations, and leftover template tokens. The emitter tests run
every generated file through it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class LintReport:
    """Outcome of linting one file or a whole design."""

    errors: list[str] = field(default_factory=list)
    modules_defined: set[str] = field(default_factory=set)
    modules_instantiated: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.errors


_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z_]\w*)", re.MULTILINE)
_INSTANCE_RE = re.compile(
    r"^\s*([A-Za-z_]\w*)\s*(?:#\s*\(.*?\))?\s+([A-Za-z_]\w*)\s*\(",
    re.MULTILINE | re.DOTALL,
)
_KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else", "case",
    "endcase", "for", "generate", "endgenerate", "genvar", "integer",
    "parameter", "localparam", "posedge", "negedge",
}


def _strip_comments(source: str) -> str:
    source = re.sub(r"//[^\n]*", "", source)
    return re.sub(r"/\*.*?\*/", "", source, flags=re.DOTALL)


def lint_source(source: str, filename: str = "<source>") -> LintReport:
    """Structurally lint one Verilog source file."""
    report = LintReport()
    stripped = _strip_comments(source)

    if "__" in stripped and re.search(r"__[A-Z]+__", stripped):
        report.errors.append(f"{filename}: unexpanded template token remains")

    # \b{kw}\b never matches inside 'end{kw}' (no word boundary there),
    # so the raw counts compare directly.
    for open_kw, close_kw in (
        ("module", "endmodule"),
        ("generate", "endgenerate"),
        ("case", "endcase"),
    ):
        opens = len(re.findall(rf"\b{open_kw}\b", stripped))
        closes = len(re.findall(rf"\b{close_kw}\b", stripped))
        if opens != closes:
            report.errors.append(
                f"{filename}: {opens} '{open_kw}' vs {closes} '{close_kw}'"
            )

    begins = len(re.findall(r"\bbegin\b", stripped))
    ends = len(re.findall(r"\bend\b(?!module|generate|case)", stripped))
    if begins != ends:
        report.errors.append(f"{filename}: {begins} 'begin' vs {ends} 'end'")

    for open_ch, close_ch in (("(", ")"), ("[", "]"), ("{", "}")):
        if stripped.count(open_ch) != stripped.count(close_ch):
            report.errors.append(
                f"{filename}: unbalanced {open_ch!r}{close_ch!r}"
            )

    report.modules_defined = set(_MODULE_RE.findall(stripped))
    for candidate, instance in _INSTANCE_RE.findall(stripped):
        if candidate not in _KEYWORDS and candidate.startswith("archytas_"):
            if instance not in _KEYWORDS:
                report.modules_instantiated.add(candidate)
    return report


def lint_design(files: dict[str, str]) -> LintReport:
    """Lint a whole emitted design and cross-check instantiations."""
    combined = LintReport()
    for filename, source in files.items():
        report = lint_source(source, filename)
        combined.errors.extend(report.errors)
        combined.modules_defined |= report.modules_defined
        combined.modules_instantiated |= report.modules_instantiated
    unresolved = combined.modules_instantiated - combined.modules_defined
    if unresolved:
        combined.errors.append(
            f"instantiated but never defined: {sorted(unresolved)}"
        )
    return combined
