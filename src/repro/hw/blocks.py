"""The hardware template's block inventory (Fig. 5).

A concrete accounting of every block in the template: the fixed-function
blocks whose resources make up the base term ``R0`` of Equ. 16, and the
three customizable blocks whose per-unit costs are the ``Rd/Rm/Rs``
coefficients. The inventory is consistent by construction with
:data:`repro.hw.resources.DEFAULT_RESOURCE_MODEL` — tests assert the
fixed blocks' resources sum to the model's base and the per-unit entries
match the model's slopes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from repro.linalg.smatrix import SMatrixLayout


@dataclass(frozen=True)
class BlockResources:
    """One template block's resource footprint."""

    name: str
    lut: float
    ff: float
    bram: float
    dsp: float
    customizable: bool = False
    per_unit: bool = False  # True: costs are per customization unit

    def as_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "bram": self.bram, "dsp": self.dsp}


def _split(base: float, fraction: float) -> float:
    return base * fraction


def template_inventory(
    model: ResourceModel = DEFAULT_RESOURCE_MODEL, k: int = 15, b: int = 15
) -> list[BlockResources]:
    """The Fig. 5 inventory, partitioning the model's base resources.

    Fractions reflect each fixed block's relative complexity: the
    Jacobian units carry the projection/rotation datapaths (most LUT/FF/
    DSP), the buffers carry most of the BRAM (sized by the Sec. 3.3
    compact layout), and the remaining control/glue logic takes the
    rest.
    """
    base = {kind: getattr(model, kind).base for kind in ("lut", "ff", "bram", "dsp")}
    smatrix_bram = SMatrixLayout(k, b).compact_words * 32 / 36_864

    fractions = {
        "visual-jacobian-unit": (0.26, 0.26, 0.08, 0.34),
        "imu-jacobian-unit": (0.12, 0.12, 0.04, 0.16),
        "prepare-ab-logic": (0.14, 0.14, 0.06, 0.16),
        "form-information-logic": (0.10, 0.10, 0.04, 0.12),
        "back-substitution": (0.10, 0.10, 0.02, 0.14),
        "update-logic": (0.06, 0.06, 0.02, 0.08),
        "control-and-host-interface": (0.22, 0.22, 0.0, 0.0),
    }
    inventory = []
    buffer_bram = base["bram"]
    for name, (f_lut, f_ff, f_bram, f_dsp) in fractions.items():
        block = BlockResources(
            name=name,
            lut=_split(base["lut"], f_lut),
            ff=_split(base["ff"], f_ff),
            bram=_split(base["bram"], f_bram),
            dsp=_split(base["dsp"], f_dsp),
        )
        buffer_bram -= block.bram
        inventory.append(block)
    # Buffers take whatever BRAM the datapath blocks do not, dominated by
    # the Linear System Parameter Buffer under the compact layout.
    inventory.append(
        BlockResources(
            name="parameter-and-io-buffers",
            lut=0.0,
            ff=0.0,
            bram=buffer_bram,
            dsp=0.0,
        )
    )
    assert buffer_bram >= smatrix_bram * 0.5, "buffers must hold the S matrix"

    inventory += [
        BlockResources(
            name="d-type-schur (per MAC)",
            lut=model.lut.per_nd,
            ff=model.ff.per_nd,
            bram=model.bram.per_nd,
            dsp=model.dsp.per_nd,
            customizable=True,
            per_unit=True,
        ),
        BlockResources(
            name="m-type-schur (per MAC)",
            lut=model.lut.per_nm,
            ff=model.ff.per_nm,
            bram=model.bram.per_nm,
            dsp=model.dsp.per_nm,
            customizable=True,
            per_unit=True,
        ),
        BlockResources(
            name="cholesky (per Update unit)",
            lut=model.lut.per_s,
            ff=model.ff.per_s,
            bram=model.bram.per_s,
            dsp=model.dsp.per_s,
            customizable=True,
            per_unit=True,
        ),
    ]
    return inventory


def fixed_block_totals(
    model: ResourceModel = DEFAULT_RESOURCE_MODEL,
) -> dict[str, float]:
    """Sum of the fixed (non-customizable) blocks — must equal R0."""
    totals = {"lut": 0.0, "ff": 0.0, "bram": 0.0, "dsp": 0.0}
    for block in template_inventory(model):
        if not block.customizable:
            for kind, value in block.as_dict().items():
                totals[kind] += value
    return totals
