"""The parameterized hardware template and its analytical models (Sec. 4-5).

The template (Fig. 5) has three customizable blocks: the Cholesky unit
(``s`` Update units), the D-type Schur unit (``nd`` MACs) and the M-type
Schur unit (``nm`` MACs). This package provides:

* the FPGA platform catalog (:mod:`fpga`);
* the analytical latency model, Equ. 6-10 and 13-15 (:mod:`latency`);
* the linear resource model, Equ. 16 (:mod:`resources`);
* the linear power model, Equ. 17, with regression fitting (:mod:`power`);
* a cycle-level discrete-event simulator that validates the analytical
  models (:mod:`sim`);
* a Verilog emitter producing the synthesizable output (:mod:`rtl`).
"""

from repro.hw.fpga import FpgaPlatform, ZC706, KINTEX7_160T, VIRTEX7_690T, FPGA_CATALOG
from repro.hw.config import HardwareConfig
from repro.hw.latency import (
    LatencyModel,
    jacobian_feature_latency,
    dschur_feature_latency,
    cholesky_latency,
    mschur_latency,
    nls_iteration_latency,
    marginalization_latency,
    window_latency_cycles,
    window_latency_seconds,
    REFERENCE_WORKLOAD,
)
from repro.hw.resources import ResourceModel, DEFAULT_RESOURCE_MODEL, fit_linear_model
from repro.hw.power import PowerModel, DEFAULT_POWER_MODEL, fit_power_model

__all__ = [
    "FpgaPlatform",
    "ZC706",
    "KINTEX7_160T",
    "VIRTEX7_690T",
    "FPGA_CATALOG",
    "HardwareConfig",
    "LatencyModel",
    "jacobian_feature_latency",
    "dschur_feature_latency",
    "cholesky_latency",
    "mschur_latency",
    "nls_iteration_latency",
    "marginalization_latency",
    "window_latency_cycles",
    "window_latency_seconds",
    "REFERENCE_WORKLOAD",
    "ResourceModel",
    "DEFAULT_RESOURCE_MODEL",
    "fit_linear_model",
    "PowerModel",
    "DEFAULT_POWER_MODEL",
    "fit_power_model",
]
