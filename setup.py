"""Legacy setup shim.

This offline environment ships setuptools but not ``wheel``, so PEP 517
editable installs (which build an editable wheel) fail. With a setup.py
present, ``pip install -e . --no-build-isolation`` falls back to the
legacy ``setup.py develop`` path, which works without wheel.
"""

from setuptools import setup

setup()
