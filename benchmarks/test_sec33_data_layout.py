"""Sec. 3.3: the compact S-matrix layout comparison."""

from conftest import report, run_once
from repro.experiments.sec3x import run_sec33


def test_sec33_data_layout(benchmark):
    result = run_once(benchmark, run_sec33)
    report(result)
    rows = {row[0]: row for row in result.rows}
    # The compact split wins, saving ~78% vs dense (the paper's number)
    # and beating symmetric CSR.
    assert result.rows[0][0] == "compact-si-sc"
    assert 75.0 < rows["compact-si-sc"][2] < 82.0
    assert rows["compact-si-sc"][1] < rows["csr-symmetric"][1]
    assert rows["symmetric"][2] < 55.0  # symmetry alone only halves it
