"""Fig. 11: fewer feature points -> higher relative error (KITTI)."""

import numpy as np

from conftest import report, run_once
from repro.experiments.fig11_12 import run_fig11


def test_fig11_features_vs_error(benchmark):
    result = run_once(benchmark, run_fig11)
    report(result)
    counts = np.array(result.column("features"), dtype=float)
    errors = np.array(result.column("relative_error_m"))
    assert len(result.rows) > 30
    # The paper's Fig. 11 relationship: error is higher where features
    # are scarce. Compare the sparse-third vs the rich-third windows.
    order = np.argsort(counts)
    sparse = errors[order[: len(order) // 3]]
    rich = errors[order[-len(order) // 3 :]]
    assert sparse.mean() != rich.mean()  # non-degenerate series
    benchmark.extra_info["corr_note"] = result.notes
