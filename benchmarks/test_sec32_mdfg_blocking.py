"""Sec. 3.2 ablation: the cost-model-driven blocking choice."""

from conftest import report, run_once
from repro.experiments.sec3x import run_sec32


def test_sec32_mdfg_blocking(benchmark):
    result = run_once(benchmark, run_sec32)
    report(result)
    # The D-type Schur (diagonal landmark elimination) wins, and by a
    # wide margin over both the direct solve and dense-split Schur.
    assert result.rows[0][0] == "schur-diagonal-landmarks"
    strategies = dict((row[0], row[1]) for row in result.rows)
    assert strategies["direct"] / strategies["schur-diagonal-landmarks"] > 3.0
    dense_same_split = next(
        cost for name, cost in strategies.items() if name == "schur-dense-p250"
    )
    assert dense_same_split / strategies["schur-diagonal-landmarks"] > 5.0
