"""Fig. 14: latency-vs-power Pareto frontier and its validation."""

from conftest import report, run_once
from repro.experiments.fig13_14 import run_fig14


def test_fig14_pareto_frontier(benchmark):
    result = run_once(benchmark, run_fig14)
    report(result)
    latencies = result.column("latency_ms")
    powers = result.column("power_w")
    assert len(result.rows) >= 5
    assert latencies == sorted(latencies)
    assert all(b <= a for a, b in zip(powers, powers[1:]))
    # The paper's Sec. 7.2 span: several-x latency and ~2x power ranges.
    assert latencies[-1] / latencies[0] > 2.0
    assert powers[0] / powers[-1] > 1.4
    # The perturbation validation must have passed.
    assert "True" in result.notes
