#!/usr/bin/env python
"""Estimator hot-loop benchmark: batched vs loop linearization backends.

Builds a fig11-scale synthetic window (~200 features over 10 keyframes by
default), times ``WindowProblem.build_linear_system()`` and
``WindowProblem.cost()`` under both backends, runs a full LM solve for
the per-stage breakdown, and writes ``BENCH_estimator.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/bench_estimator.py
    PYTHONPATH=src python benchmarks/perf/bench_estimator.py \
        --features 48 --keyframes 6 --repeats 3 --output /tmp/bench.json

The ``combined_speedup`` field is the acceptance number: loop over
batched on the summed build + cost time per window.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.imu.preintegration import ImuPreintegration
from repro.linalg.plan import reset_default_plan_cache
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.slam.problem import WindowProblem
from repro.slam.residuals import ImuFactor, VisualFactor, make_pose_anchor_prior


def make_window_problem(
    num_features: int,
    num_keyframes: int,
    seed: int = 0,
    backend: str = "batched",
    huber_delta: float | None = 2.0,
    scenario: str | None = None,
) -> WindowProblem:
    """A fig11-scale synthetic window: forward motion past a feature field.

    Every feature is anchored at the earliest keyframe that sees it and
    observed from the later keyframes it stays visible in, mirroring the
    factor-graph shape the sliding-window estimator produces. With
    ``scenario`` set, the window instead comes from the named degenerate
    regime (:mod:`repro.scenarios`) — the perf trend on hard inputs, not
    just the happy path.
    """
    if scenario:
        from repro.scenarios import make_scenario_window

        return make_scenario_window(
            scenario,
            seed,
            num_keyframes=num_keyframes,
            num_features=num_features,
            backend=backend,
            huber_delta=huber_delta,
        )
    rng = np.random.default_rng(seed)
    camera = PinholeCamera()
    speed = 1.2  # m/s forward
    dt_kf = 0.2

    states: dict[int, NavState] = {}
    for k in range(num_keyframes):
        true_position = np.array([speed * dt_kf * k, 0.0, 0.0])
        noise = rng.normal(scale=0.01, size=3) if k else np.zeros(3)
        states[k] = NavState(
            pose=SE3(np.eye(3), true_position + noise),
            velocity=np.array([speed, 0.0, 0.0]),
        )

    factors: list[VisualFactor] = []
    inv_depths: dict[int, float] = {}
    pixel_sigma = 1.0
    weight = 1.0 / (pixel_sigma * pixel_sigma)
    for fid in range(num_features):
        anchor = int(rng.integers(0, num_keyframes - 1))
        bearing = np.array(
            [rng.uniform(-0.5, 0.5), rng.uniform(-0.35, 0.35), 1.0]
        )
        depth = rng.uniform(4.0, 20.0)
        anchor_pose = SE3(np.eye(3), np.array([speed * dt_kf * anchor, 0.0, 0.0]))
        point_w = anchor_pose.transform(bearing * depth)
        observed = 0
        for target in range(anchor + 1, num_keyframes):
            target_pose = SE3(
                np.eye(3), np.array([speed * dt_kf * target, 0.0, 0.0])
            )
            if not camera.is_visible(target_pose, point_w):
                continue
            pixel = camera.project(target_pose, point_w) + rng.normal(
                scale=pixel_sigma, size=2
            )
            factors.append(
                VisualFactor(fid, anchor, target, bearing, pixel, weight=weight)
            )
            observed += 1
        if observed:
            inv_depths[fid] = float(1.0 / depth * rng.uniform(0.85, 1.18))

    factors = [f for f in factors if f.feature_id in inv_depths]

    imu_factors = []
    for k in range(1, num_keyframes):
        pre = ImuPreintegration()
        for _ in range(int(dt_kf / 0.005)):
            pre.integrate(
                np.zeros(3), np.array([0.0, 0.0, 9.81]), 0.005, 1e-3, 1e-2
            )
        imu_factors.append(ImuFactor(k - 1, k, pre))

    return WindowProblem(
        camera=camera,
        states=states,
        inv_depths=inv_depths,
        visual_factors=factors,
        imu_factors=imu_factors,
        priors=[make_pose_anchor_prior(0, states[0])],
        huber_delta=huber_delta,
        backend=backend,
    )


def _time_calls(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def bench_backend(
    backend: str,
    num_features: int,
    num_keyframes: int,
    repeats: int,
    seed: int,
    scenario: str | None = None,
) -> dict:
    """Measure one backend on the synthetic window."""
    problem = make_window_problem(
        num_features, num_keyframes, seed=seed, backend=backend, scenario=scenario
    )
    build_s = _time_calls(problem.build_linear_system, repeats)
    cost_s = _time_calls(problem.cost, repeats)
    system = problem.build_linear_system()

    # Per-stage breakdown of a full LM solve from the same start point,
    # on a fresh plan cache. One window structure means one solve is one
    # plan fetch, so a cold cache reads hit_rate 0.0 by construction —
    # report the cold pass and a warm repeat separately: the warm pass
    # is the steady-state number a serving session sees once its window
    # structure has been memoized.
    cache = reset_default_plan_cache()
    fresh = make_window_problem(
        num_features, num_keyframes, seed=seed, backend=backend, scenario=scenario
    )
    lm = levenberg_marquardt(fresh, LMConfig(max_iterations=6))
    plan_cache_cold = cache.stats()
    warm = make_window_problem(
        num_features, num_keyframes, seed=seed, backend=backend, scenario=scenario
    )
    levenberg_marquardt(warm, LMConfig(max_iterations=6))
    after_warm = cache.stats()
    warm_hits = after_warm["hits"] - plan_cache_cold["hits"]
    warm_misses = after_warm["misses"] - plan_cache_cold["misses"]
    warm_total = warm_hits + warm_misses
    plan_cache = {
        "cold": plan_cache_cold,
        "warm": {
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_rate": warm_hits / warm_total if warm_total else 0.0,
            "plans": after_warm["plans"],
        },
    }
    reset_default_plan_cache()
    stage_ms = {
        key.replace("_s", "_ms"): value * 1e3
        for key, value in lm.timings.as_dict().items()
    }
    combined = build_s + cost_s
    return {
        "backend": backend,
        "build_linear_system_ms": build_s * 1e3,
        "cost_ms": cost_s * 1e3,
        "combined_ms": combined * 1e3,
        "windows_per_sec": 1.0 / combined if combined > 0 else 0.0,
        "build_split_ms": {
            "linearize_ms": system.linearize_seconds * 1e3,
            "assemble_ms": system.assemble_seconds * 1e3,
        },
        "lm_solve": {
            "iterations": lm.iterations,
            "accepted_steps": lm.accepted_steps,
            "final_cost": lm.final_cost,
            "stage_ms": stage_ms,
            "plan_cache": plan_cache,
        },
    }


def run_benchmark(
    num_features: int = 200,
    num_keyframes: int = 10,
    repeats: int = 5,
    seed: int = 0,
    scenario: str | None = None,
) -> dict:
    probe = make_window_problem(
        num_features, num_keyframes, seed=seed, scenario=scenario
    )
    results = {
        backend: bench_backend(
            backend, num_features, num_keyframes, repeats, seed, scenario=scenario
        )
        for backend in ("loop", "batched")
    }
    combined_speedup = (
        results["loop"]["combined_ms"] / results["batched"]["combined_ms"]
        if results["batched"]["combined_ms"] > 0
        else float("inf")
    )
    return {
        "benchmark": "estimator-hot-loop",
        "workload": {
            "num_features": len(probe.inv_depths),
            "num_keyframes": num_keyframes,
            "num_observations": len(probe.visual_factors),
            "requested_features": num_features,
            "repeats": repeats,
            "seed": seed,
            "scenario": scenario or "nominal",
        },
        "backends": results,
        "combined_speedup": combined_speedup,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--features", type=int, default=200)
    parser.add_argument("--keyframes", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="bench a degenerate regime from repro.scenarios "
        "(tunnel, loop_closure, aggressive, highway, mixed) "
        "instead of the nominal window",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_estimator.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the combined speedup falls below this",
    )
    args = parser.parse_args()

    report = run_benchmark(
        num_features=args.features,
        num_keyframes=args.keyframes,
        repeats=args.repeats,
        seed=args.seed,
        scenario=args.scenario,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    loop = report["backends"]["loop"]
    batched = report["backends"]["batched"]
    print(
        f"workload: {report['workload']['num_features']} features, "
        f"{report['workload']['num_keyframes']} keyframes, "
        f"{report['workload']['num_observations']} observations "
        f"({report['workload']['scenario']})"
    )
    for name, entry in (("loop", loop), ("batched", batched)):
        print(
            f"  {name:8s} build {entry['build_linear_system_ms']:8.2f} ms  "
            f"cost {entry['cost_ms']:7.2f} ms  "
            f"-> {entry['windows_per_sec']:8.1f} windows/s"
        )
    stage = batched["lm_solve"]["stage_ms"]
    print(
        f"  batched LM solve {stage['solve_ms']:.2f} ms "
        f"(schur {stage.get('schur_ms', 0.0):.2f} + "
        f"chol {stage.get('chol_ms', 0.0):.2f} + "
        f"backsub {stage.get('backsub_ms', 0.0):.2f})"
    )
    cache_stats = batched["lm_solve"]["plan_cache"]
    print(
        f"  plan cache hit-rate: cold {cache_stats['cold']['hit_rate']:.2f}  "
        f"warm {cache_stats['warm']['hit_rate']:.2f}"
    )
    print(f"combined speedup (loop / batched): {report['combined_speedup']:.1f}x")
    print(f"report written to {args.output}")

    if args.min_speedup is not None and report["combined_speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {report['combined_speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
