#!/usr/bin/env python
"""Non-gating portfolio-energy regression check for the portfolio-smoke CI job.

Compares the marginal portfolio fleet's total window energy (virtual,
deterministic) in a freshly generated ``BENCH_portfolio.json`` against
the committed baseline and emits a GitHub Actions ``::warning::``
annotation — *not* a failure — when energy regressed by more than the
threshold, or when the Pareto-domination claim flipped off. Energy here
is virtual-time accounting, so a change is a behaviour change (solver
allocation, routing, power model), never runner noise — but the job
stays non-gating so an intentional model retune doesn't block a merge
before the baseline is regenerated.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_portfolio_regression.py \
        --baseline BENCH_portfolio.baseline.json \
        --current BENCH_portfolio.json \
        [--threshold 0.25]

Always exits 0 unless an input file is missing or malformed (exit 2):
a broken harness should be visible, a changed number should be a
warning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def marginal_energy(report: dict) -> float:
    """Total window + reconfiguration energy of the marginal fleet [J]."""
    fleet = next(
        f for f in report["fleets"] if f["label"] == "portfolio-marginal"
    )
    return float(fleet["energy_j"]) + float(fleet["reconfig_energy_j"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative energy increase that triggers the warning "
        "(0.25 = +25%%)",
    )
    args = parser.parse_args()

    try:
        baseline_report = json.loads(args.baseline.read_text())
        current_report = json.loads(args.current.read_text())
        baseline = marginal_energy(baseline_report)
        current = marginal_energy(current_report)
    except (OSError, KeyError, ValueError, TypeError, StopIteration) as error:
        print(f"::error::portfolio regression check could not read inputs: {error}")
        return 2

    if baseline <= 0.0:
        print(f"::warning::baseline energy is {baseline}; skipping comparison")
        return 0

    change = (current - baseline) / baseline
    summary = (
        f"portfolio fleet energy: baseline {baseline:.3f} J, "
        f"current {current:.3f} J ({change:+.1%})"
    )
    if change > args.threshold:
        print(f"::warning::{summary} — exceeds the {args.threshold:.0%} budget")
    else:
        print(summary)

    if not current_report.get("portfolio_dominates_single", False):
        print(
            "::warning::the solved portfolio no longer Pareto-dominates the "
            "best single-config fleet on (p99, energy)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
