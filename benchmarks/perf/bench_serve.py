#!/usr/bin/env python
"""Serving-tier benchmark: throughput scaling across the accelerator pool.

Runs the same seeded open-loop workload against pools of 1, 2, and 4
simulated accelerator instances and reports, per pool size, the served
throughput (virtual windows/s), latency percentiles, queue behaviour,
shed/degraded counts, and instance utilization — plus the wall-clock
cost of the simulation itself. Writes ``BENCH_serve.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py
    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        --sessions 12 --rate 30 --duration 3 --output /tmp/bench.json

``scaling_1_to_4`` is the acceptance number: served-throughput ratio of
the 4-instance pool over the 1-instance pool on a saturating workload.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402
from repro.serve import LoadProfile, LocalizationService  # noqa: E402


def base_profile(args: argparse.Namespace) -> LoadProfile:
    """A burst workload that saturates every pool size under test.

    Arrivals come fast enough that the whole recording of every session
    is offered within a fraction of a second; admission control is
    opened wide (no shedding, no degradation) so each pool size serves
    the *same* fixed set of windows and throughput = capacity.
    """
    return LoadProfile(
        name="bench-serve",
        description="throughput-scaling workload for bench_serve.py",
        num_sessions=args.sessions,
        num_instances=1,
        arrival="poisson",
        rate_hz=args.rate,
        duration_s=args.duration,
        sequence_duration_s=args.sequence_duration,
        deadline_s=0.25,
        # Depth can never exceed num_sessions (single-inflight rule), so
        # max_queue == num_sessions disables admission shedding and
        # backpressure == max_queue disables degradation.
        max_queue=args.sessions,
        backpressure=args.sessions,
        max_pending_per_session=64,
        batch_size=4,
        seed=args.seed,
    )


def bench_pool(profile: LoadProfile, num_instances: int) -> dict:
    """One pool size, fresh engine (memo shared within the run only)."""
    run_profile = dataclasses.replace(profile, num_instances=num_instances)
    # An in-process engine without disk keeps pool sizes independent of
    # each other and of any cache state on the machine.
    service = LocalizationService(run_profile, engine=Engine(use_disk=False))
    report = service.run()
    totals = report.metrics["totals"]
    return {
        "num_instances": num_instances,
        "throughput_wps": totals["throughput_wps"],
        "windows_served": totals["windows_served"],
        "windows_shed": totals["windows_shed"],
        "windows_degraded": totals["windows_degraded"],
        "deadline_misses": totals["deadline_misses"],
        "errors": totals["errors"],
        "makespan_s": totals["makespan_s"],
        "latency_p50_ms": report.metrics["latency_ms"]["p50_ms"],
        "latency_p99_ms": report.metrics["latency_ms"]["p99_ms"],
        "queue_depth_max": report.metrics["queue"]["depth_max"],
        "mean_batch_occupancy": report.metrics["batches"]["mean_occupancy"],
        "utilization": [
            instance["utilization"] for instance in report.metrics["instances"]
        ],
        "wall_seconds": report.wall_seconds,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    profile = base_profile(args)
    pools = [bench_pool(profile, n) for n in (1, 2, 4)]
    by_size = {p["num_instances"]: p for p in pools}
    base = by_size[1]["throughput_wps"]
    return {
        "benchmark": "serve-throughput-scaling",
        "workload": {
            "num_sessions": profile.num_sessions,
            "rate_hz": profile.rate_hz,
            "duration_s": profile.duration_s,
            "sequence_duration_s": profile.sequence_duration_s,
            "seed": profile.seed,
        },
        "pools": pools,
        "scaling_1_to_2": by_size[2]["throughput_wps"] / base if base else 0.0,
        "scaling_1_to_4": by_size[4]["throughput_wps"] / base if base else 0.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=16)
    parser.add_argument("--rate", type=float, default=60.0)
    parser.add_argument("--duration", type=float, default=1.5)
    parser.add_argument("--sequence-duration", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="exit non-zero if scaling_1_to_4 falls below this",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="exit non-zero if the 4-instance pool's p99 exceeds this",
    )
    parser.add_argument(
        "--require-zero-errors",
        action="store_true",
        help="exit non-zero if any pool recorded a serve error",
    )
    args = parser.parse_args()

    report = run_benchmark(args)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for pool in report["pools"]:
        print(
            f"instances {pool['num_instances']}: "
            f"{pool['throughput_wps']:8.1f} windows/s  "
            f"p99 {pool['latency_p99_ms']:7.2f} ms  "
            f"shed {pool['windows_shed']:4d}  "
            f"errors {pool['errors']}  "
            f"(wall {pool['wall_seconds']:.1f} s)"
        )
    print(
        f"scaling 1->2: {report['scaling_1_to_2']:.2f}x   "
        f"1->4: {report['scaling_1_to_4']:.2f}x"
    )
    print(f"report -> {args.output}")

    failed = []
    if args.min_scaling is not None and report["scaling_1_to_4"] < args.min_scaling:
        failed.append(
            f"scaling_1_to_4 {report['scaling_1_to_4']:.2f} < {args.min_scaling}"
        )
    four = next(p for p in report["pools"] if p["num_instances"] == 4)
    if args.max_p99_ms is not None and four["latency_p99_ms"] > args.max_p99_ms:
        failed.append(f"p99 {four['latency_p99_ms']:.2f} ms > {args.max_p99_ms}")
    if args.require_zero_errors and any(p["errors"] for p in report["pools"]):
        failed.append("serve errors recorded")
    if failed:
        print("FAILED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
