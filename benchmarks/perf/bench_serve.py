#!/usr/bin/env python
"""Serving-tier benchmark: pool scaling and shard/process scaling.

Two sections, one seeded open-loop workload, one ``BENCH_serve.json``:

* **Pool scaling** (virtual time): the workload against pools of 1, 2,
  and 4 simulated accelerator instances — served throughput in virtual
  windows/s, latency percentiles, queue behaviour, utilization.
* **Shard scaling** (wall time): the same workload on a fixed 4-instance
  pool split across 1, 2, and 4 shared-nothing shards with the process
  execution backend, against the single-process thread baseline. The
  reported number is *wall-clock* serving throughput (windows served per
  second of event-loop wall time, one-time prepare/fork cost excluded) —
  the multicore payoff. Virtual metrics are byte-identical across every
  point by construction; the bench asserts that invariant.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py
    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        --sessions 12 --rate 30 --duration 3 --output /tmp/bench.json

``scaling_1_to_4`` is the pool-scaling acceptance number;
``shards.wall_scaling_1_to_4`` is the shard-scaling one (≥3x expected on
a 4-core runner; on fewer cores the process backend only pays overhead).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402
from repro.serve import LoadProfile, LocalizationService, run_fleet  # noqa: E402


def base_profile(args: argparse.Namespace) -> LoadProfile:
    """A burst workload that saturates every pool size under test.

    Arrivals come fast enough that the whole recording of every session
    is offered within a fraction of a second; admission control is
    opened wide (no shedding, no degradation) so each pool size serves
    the *same* fixed set of windows and throughput = capacity.
    """
    return LoadProfile(
        name="bench-serve" + (f"-{args.scenario}" if args.scenario else ""),
        description="throughput-scaling workload for bench_serve.py",
        scenario=args.scenario,
        num_sessions=args.sessions,
        num_instances=1,
        arrival="poisson",
        rate_hz=args.rate,
        duration_s=args.duration,
        sequence_duration_s=args.sequence_duration,
        deadline_s=0.25,
        # Depth can never exceed num_sessions (single-inflight rule), so
        # max_queue == num_sessions disables admission shedding and
        # backpressure == max_queue disables degradation.
        max_queue=args.sessions,
        backpressure=args.sessions,
        max_pending_per_session=64,
        batch_size=4,
        seed=args.seed,
    )


def bench_pool(profile: LoadProfile, num_instances: int) -> dict:
    """One pool size, fresh engine (memo shared within the run only)."""
    run_profile = dataclasses.replace(profile, num_instances=num_instances)
    # An in-process engine without disk keeps pool sizes independent of
    # each other and of any cache state on the machine.
    service = LocalizationService(run_profile, engine=Engine(use_disk=False))
    report = service.run()
    totals = report.metrics["totals"]
    return {
        "num_instances": num_instances,
        "throughput_wps": totals["throughput_wps"],
        "windows_served": totals["windows_served"],
        "windows_shed": totals["windows_shed"],
        "windows_degraded": totals["windows_degraded"],
        "deadline_misses": totals["deadline_misses"],
        "errors": totals["errors"],
        "makespan_s": totals["makespan_s"],
        "latency_p50_ms": report.metrics["latency_ms"]["p50_ms"],
        "latency_p99_ms": report.metrics["latency_ms"]["p99_ms"],
        "queue_depth_max": report.metrics["queue"]["depth_max"],
        "mean_batch_occupancy": report.metrics["batches"]["mean_occupancy"],
        "utilization": [
            instance["utilization"] for instance in report.metrics["instances"]
        ],
        "wall_seconds": report.wall_seconds,
    }


def bench_fleet(profile: LoadProfile, num_shards: int, backend: str) -> dict:
    """One fleet shape on a fixed 4-instance pool: wall-clock serving rate.

    ``serve_wall_seconds`` is the event-loop phase only — the slowest
    shard's wall time after the sequential build/fork prepare — because
    that is the steady-state serving rate; prepare is a one-time cost
    reported separately.
    """
    report = run_fleet(
        dataclasses.replace(profile, num_instances=4), num_shards, backend=backend
    )
    totals = report.metrics["totals"]
    live = [r for r in report.shard_reports if r is not None]
    serve_wall = max(r.wall_seconds - r.prepare_seconds for r in live)
    served = totals["windows_served"]
    return {
        "num_shards": num_shards,
        "backend": backend,
        "windows_served": served,
        "errors": totals["errors"],
        "virtual_throughput_wps": totals["throughput_wps"],
        "serve_wall_seconds": serve_wall,
        "prepare_wall_seconds": sum(r.prepare_seconds for r in live),
        "wall_throughput_wps": served / serve_wall if serve_wall else 0.0,
        "sessions_per_shard": [len(s.session_ids) for s in report.specs],
    }


def bench_shard_scaling(profile: LoadProfile) -> dict:
    """Thread baseline vs process backend at 1, 2, and 4 shards."""
    baseline = bench_fleet(profile, 1, "thread")
    points = [baseline] + [bench_fleet(profile, n, "process") for n in (1, 2, 4)]
    base = baseline["wall_throughput_wps"]
    by_shards = {
        p["num_shards"]: p for p in points if p["backend"] == "process"
    }
    return {
        "points": points,
        # At a fixed shard count, virtual metrics must not depend on the
        # execution backend — the determinism contract the wall-clock
        # comparison rests on. (Different shard counts legitimately
        # differ: each shard count is its own set of EDF queues.)
        "virtual_invariant": (
            baseline["virtual_throughput_wps"]
            == by_shards[1]["virtual_throughput_wps"]
            and baseline["windows_served"] == by_shards[1]["windows_served"]
        ),
        "wall_scaling_1_to_2": (
            by_shards[2]["wall_throughput_wps"] / base if base else 0.0
        ),
        "wall_scaling_1_to_4": (
            by_shards[4]["wall_throughput_wps"] / base if base else 0.0
        ),
    }


def bench_policy(policy_path: str) -> dict:
    """Learned-policy vs counter-baseline energy/drift on the eval profiles.

    Virtual-time metrics, so every number is deterministic given the
    frozen artifact — a changed ``policy_energy_saving`` means the
    artifact or the serving tier changed, never the machine.
    """
    from repro.runtime.policy import ControllerPolicy
    from repro.serve import resolve_profile

    frozen = ControllerPolicy.load(policy_path)
    entries = []
    for name in ("smoke", "steady", "overload"):
        profile = resolve_profile(name)
        engine = Engine(use_disk=False)
        base = LocalizationService(profile, engine=engine).run().metrics
        learned = (
            LocalizationService(
                dataclasses.replace(profile, policy=str(policy_path)),
                engine=engine,
            )
            .run()
            .metrics
        )
        base_e = base["totals"]["energy_j"]
        learned_e = learned["totals"]["energy_j"]

        def mean_drift(metrics: dict) -> float:
            served = sum(s["windows_served"] for s in metrics["sessions"])
            weighted = sum(
                s["mean_drift_m"] * s["windows_served"]
                for s in metrics["sessions"]
            )
            return weighted / served if served else 0.0

        entries.append(
            {
                "profile": name,
                "baseline_energy_j": base_e,
                "policy_energy_j": learned_e,
                "energy_saving": 1.0 - learned_e / base_e if base_e else 0.0,
                "baseline_drift_m": mean_drift(base),
                "policy_drift_m": mean_drift(learned),
                "baseline_deadline_misses": base["totals"]["deadline_misses"],
                "policy_deadline_misses": learned["totals"]["deadline_misses"],
            }
        )
    return {
        "artifact": str(policy_path),
        "digest": frozen.digest,
        "profiles": entries,
        "mean_energy_saving": sum(e["energy_saving"] for e in entries)
        / len(entries),
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    profile = base_profile(args)
    pools = [bench_pool(profile, n) for n in (1, 2, 4)]
    by_size = {p["num_instances"]: p for p in pools}
    base = by_size[1]["throughput_wps"]
    return {
        "benchmark": "serve-throughput-scaling",
        "workload": {
            "num_sessions": profile.num_sessions,
            "rate_hz": profile.rate_hz,
            "duration_s": profile.duration_s,
            "sequence_duration_s": profile.sequence_duration_s,
            "scenario": profile.scenario or "nominal",
            "seed": profile.seed,
        },
        "pools": pools,
        "scaling_1_to_2": by_size[2]["throughput_wps"] / base if base else 0.0,
        "scaling_1_to_4": by_size[4]["throughput_wps"] / base if base else 0.0,
        "shards": None if args.skip_shards else bench_shard_scaling(profile),
        "policy": bench_policy(args.policy) if args.policy else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=16)
    parser.add_argument("--rate", type=float, default=60.0)
    parser.add_argument("--duration", type=float, default=1.5)
    parser.add_argument("--sequence-duration", type=float, default=4.0)
    parser.add_argument(
        "--scenario",
        default="",
        metavar="NAME",
        help="serve a degenerate regime's recordings instead of the "
        "catalog mix (tunnel, loop_closure, aggressive, highway, mixed)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--skip-shards",
        action="store_true",
        help="skip the shard/process scaling section (pool scaling only)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="ARTIFACT",
        help="also benchmark this frozen POLICY.json against the counter "
        "baseline on the eval profiles (energy/drift per profile)",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="exit non-zero if scaling_1_to_4 falls below this",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="exit non-zero if the 4-instance pool's p99 exceeds this",
    )
    parser.add_argument(
        "--require-zero-errors",
        action="store_true",
        help="exit non-zero if any pool recorded a serve error",
    )
    args = parser.parse_args()

    report = run_benchmark(args)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for pool in report["pools"]:
        print(
            f"instances {pool['num_instances']}: "
            f"{pool['throughput_wps']:8.1f} windows/s  "
            f"p99 {pool['latency_p99_ms']:7.2f} ms  "
            f"shed {pool['windows_shed']:4d}  "
            f"errors {pool['errors']}  "
            f"(wall {pool['wall_seconds']:.1f} s)"
        )
    print(
        f"scaling 1->2: {report['scaling_1_to_2']:.2f}x   "
        f"1->4: {report['scaling_1_to_4']:.2f}x"
    )
    shards = report["shards"]
    if shards is not None:
        for point in shards["points"]:
            print(
                f"shards {point['num_shards']} ({point['backend']:7s}): "
                f"{point['wall_throughput_wps']:8.1f} windows/wall-s  "
                f"serve {point['serve_wall_seconds']:.2f} s  "
                f"prepare {point['prepare_wall_seconds']:.2f} s  "
                f"errors {point['errors']}"
            )
        print(
            f"shard wall scaling (process vs 1-shard thread) "
            f"1->2: {shards['wall_scaling_1_to_2']:.2f}x   "
            f"1->4: {shards['wall_scaling_1_to_4']:.2f}x   "
            f"virtual metrics invariant: {shards['virtual_invariant']}"
        )
    policy = report["policy"]
    if policy is not None:
        for entry in policy["profiles"]:
            print(
                f"policy {entry['profile']:<9}: energy "
                f"{entry['baseline_energy_j']:.4f} -> "
                f"{entry['policy_energy_j']:.4f} J "
                f"({entry['energy_saving']:+.1%})  drift "
                f"{entry['baseline_drift_m']:.6f} -> "
                f"{entry['policy_drift_m']:.6f} m"
            )
        print(
            f"policy mean energy saving: {policy['mean_energy_saving']:+.1%} "
            f"(digest {policy['digest'][:12]})"
        )
    print(f"report -> {args.output}")

    failed = []
    if args.min_scaling is not None and report["scaling_1_to_4"] < args.min_scaling:
        failed.append(
            f"scaling_1_to_4 {report['scaling_1_to_4']:.2f} < {args.min_scaling}"
        )
    four = next(p for p in report["pools"] if p["num_instances"] == 4)
    if args.max_p99_ms is not None and four["latency_p99_ms"] > args.max_p99_ms:
        failed.append(f"p99 {four['latency_p99_ms']:.2f} ms > {args.max_p99_ms}")
    if args.require_zero_errors and any(p["errors"] for p in report["pools"]):
        failed.append("serve errors recorded")
    if shards is not None and not shards["virtual_invariant"]:
        failed.append("virtual metrics varied across backends/shard counts")
    if failed:
        print("FAILED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
