#!/usr/bin/env python
"""Non-gating solve-stage regression check for the perf-smoke CI job.

Compares the freshly measured ``lm_solve.stage_ms.solve_ms`` of the
batched backend against the committed ``BENCH_estimator.json`` baseline
and emits a GitHub Actions ``::warning::`` annotation — *not* a failure
— when the solve stage regressed by more than the threshold. CI runners
are noisy machines; the annotation makes a regression loud in the PR
checks without letting runner jitter block merges.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_solve_regression.py \
        --baseline BENCH_estimator.baseline.json \
        --current BENCH_estimator.json \
        [--threshold 0.25] [--backend batched]

Always exits 0 unless an input file is missing or malformed (exit 2):
a broken harness should be visible, a slow runner should not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def solve_ms(report: dict, backend: str) -> float:
    return float(report["backends"][backend]["lm_solve"]["stage_ms"]["solve_ms"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression that triggers the warning (0.25 = +25%%)",
    )
    parser.add_argument("--backend", default="batched")
    args = parser.parse_args()

    try:
        baseline = solve_ms(json.loads(args.baseline.read_text()), args.backend)
        current = solve_ms(json.loads(args.current.read_text()), args.backend)
    except (OSError, KeyError, ValueError, TypeError) as error:
        print(f"::error::solve regression check could not read inputs: {error}")
        return 2

    if baseline <= 0.0:
        print(f"::warning::baseline solve_ms is {baseline}; skipping comparison")
        return 0

    change = (current - baseline) / baseline
    summary = (
        f"solve_ms {args.backend}: baseline {baseline:.2f} ms, "
        f"current {current:.2f} ms ({change:+.1%})"
    )
    if change > args.threshold:
        print(
            f"::warning title=solve-stage regression::{summary} exceeds the "
            f"{args.threshold:.0%} budget — investigate before merging"
        )
    else:
        print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
