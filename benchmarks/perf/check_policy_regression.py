#!/usr/bin/env python
"""Non-gating learned-policy energy-saving regression check.

Compares the ``policy`` section of a freshly measured ``BENCH_serve.json``
(produced with ``bench_serve.py --policy POLICY.json``) against the
committed baseline and emits a GitHub Actions ``::warning::``
annotation — *not* a failure — when the mean energy saving of the
learned controller over the counter baseline shrank by more than the
threshold (absolute percentage points). The numbers are virtual-time
and deterministic, so any change is a behaviour change; the gating
check on domination itself lives in ``python -m repro.testing
--policy-eval`` — this annotation just makes *how much* headroom moved
loud in the PR checks.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_policy_regression.py \
        --baseline BENCH_serve.baseline.json \
        --current BENCH_serve.json \
        [--threshold 0.02]

Always exits 0 unless an input file is missing or malformed (exit 2).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--threshold", type=float, default=0.02,
        help="absolute drop in mean energy saving that triggers the "
        "warning (0.02 = 2 percentage points)",
    )
    args = parser.parse_args()

    try:
        baseline = json.loads(args.baseline.read_text()).get("policy")
        current = json.loads(args.current.read_text()).get("policy")
    except (OSError, ValueError) as error:
        print(f"::error::policy regression check could not read inputs: {error}")
        return 2

    if not baseline or not current:
        print(
            "::warning::one of the reports has no policy section "
            "(run bench_serve.py --policy POLICY.json) — skipping comparison"
        )
        return 0

    base_saving = float(baseline["mean_energy_saving"])
    cur_saving = float(current["mean_energy_saving"])
    drop = base_saving - cur_saving
    summary = (
        f"learned-policy mean energy saving: baseline {base_saving:+.1%}, "
        f"current {cur_saving:+.1%} "
        f"(digest {baseline['digest'][:12]} -> {current['digest'][:12]})"
    )
    if drop > args.threshold:
        print(
            f"::warning title=policy energy-saving regression::{summary} — "
            f"saving shrank by {drop:.1%}, over the {args.threshold:.0%} budget"
        )
    else:
        print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
