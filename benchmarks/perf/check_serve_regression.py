#!/usr/bin/env python
"""Non-gating serving-throughput regression check for the serve-smoke CI job.

Compares the freshly measured steady serving throughput — the 1-shard
thread baseline's ``wall_throughput_wps`` from the shard-scaling section
of ``BENCH_serve.json`` — against the committed baseline and emits a
GitHub Actions ``::warning::`` annotation — *not* a failure — when
throughput regressed by more than the threshold. CI runners are noisy
machines; the annotation makes a regression loud in the PR checks
without letting runner jitter block merges.

If either file predates the shard-scaling section (``"shards": null`` or
missing), the check falls back to the virtual pool-scaling throughput of
the 1-instance pool, which is deterministic but only regresses on
behaviour changes, not slow code.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_serve_regression.py \
        --baseline BENCH_serve.baseline.json \
        --current BENCH_serve.json \
        [--threshold 0.25]

Always exits 0 unless an input file is missing or malformed (exit 2):
a broken harness should be visible, a slow runner should not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def steady_throughput(report: dict) -> tuple[float, str]:
    """(windows/s, metric label) for the steady serving rate."""
    shards = report.get("shards")
    if shards:
        for point in shards["points"]:
            if point["num_shards"] == 1 and point["backend"] == "thread":
                return float(point["wall_throughput_wps"]), "wall_throughput_wps"
    pool = next(p for p in report["pools"] if p["num_instances"] == 1)
    return float(pool["throughput_wps"]), "virtual_throughput_wps"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression that triggers the warning (0.25 = -25%%)",
    )
    args = parser.parse_args()

    try:
        baseline, base_label = steady_throughput(
            json.loads(args.baseline.read_text())
        )
        current, cur_label = steady_throughput(json.loads(args.current.read_text()))
    except (OSError, KeyError, ValueError, TypeError, StopIteration) as error:
        print(f"::error::serve regression check could not read inputs: {error}")
        return 2

    if base_label != cur_label:
        print(
            f"::warning::baseline reports {base_label} but current reports "
            f"{cur_label}; regenerate the baseline — skipping comparison"
        )
        return 0
    if baseline <= 0.0:
        print(f"::warning::baseline throughput is {baseline}; skipping comparison")
        return 0

    change = (current - baseline) / baseline
    summary = (
        f"steady serve throughput ({cur_label}): baseline {baseline:.1f} w/s, "
        f"current {current:.1f} w/s ({change:+.1%})"
    )
    if change < -args.threshold:
        print(
            f"::warning title=serve-throughput regression::{summary} exceeds the "
            f"-{args.threshold:.0%} budget — investigate before merging"
        )
    else:
        print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
