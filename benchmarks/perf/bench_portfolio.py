#!/usr/bin/env python
"""Portfolio-fleet benchmark: mixed configs + routing vs the best single config.

One seeded open-loop workload over the ``mixed`` degenerate-regime
forecast, three fleets of equal instance count, one
``BENCH_portfolio.json``:

* **single-best** — the solver constrained to one config
  (``portfolio_configs=1``): the best *homogeneous* fleet for the mix,
  FIFO-dispatched. This is the Archytas-style baseline: one synthesized
  accelerator, replicated.
* **portfolio-fifo** — the solved mixed portfolio deployed, but windows
  still FIFO-dispatched: isolates the hardware-mix gain from the
  routing gain.
* **portfolio-marginal** — the solved portfolio with config-aware
  marginal-completion-time routing: the full fleet-planning stack.

The acceptance claim is Pareto domination at equal instance count: the
marginal portfolio's p99 latency must not exceed the single-config
fleet's, and its total window energy must be strictly lower. Shedding
and degradation are disabled (queue bounds opened to the session count)
so every fleet serves the identical window set and the comparison is
apples to apples.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/bench_portfolio.py
    PYTHONPATH=src python benchmarks/perf/bench_portfolio.py \
        --sessions 8 --rate 8 --duration 4 --output /tmp/bench.json

``--require-domination`` turns the Pareto claim into the exit code.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402
from repro.serve import LoadProfile, LocalizationService  # noqa: E402


def base_profile(args: argparse.Namespace) -> LoadProfile:
    """The shared workload: every fleet serves the same window set.

    Queue bounds open to the session count (single-inflight rule bounds
    depth by sessions) so no fleet sheds or degrades — served work is
    identical and (p99, energy) is a fair frontier.
    """
    return LoadProfile(
        name="bench-portfolio",
        description="portfolio-vs-single-config workload for bench_portfolio.py",
        scenario="mixed",
        num_sessions=args.sessions,
        num_instances=args.instances,
        arrival="poisson",
        rate_hz=args.rate,
        duration_s=args.duration,
        sequence_duration_s=args.sequence_duration,
        deadline_s=0.25,
        max_queue=args.sessions,
        backpressure=args.sessions,
        max_pending_per_session=64,
        batch_size=4,
        seed=args.seed,
    )


def bench_fleet(profile: LoadProfile, label: str, **overrides) -> dict:
    """One fleet variant on a fresh in-process engine."""
    variant = dataclasses.replace(profile, **overrides)
    report = LocalizationService(variant, engine=Engine(use_disk=False)).run()
    metrics = report.metrics
    totals = metrics["totals"]
    portfolio = metrics["portfolio"]
    return {
        "label": label,
        "route": variant.route,
        "configs": [
            {"config_id": e["config_id"], "count": e["count"]}
            for e in portfolio.get("entries", [])
        ],
        "windows_served": totals["windows_served"],
        "windows_shed": totals["windows_shed"],
        "errors": totals["errors"],
        "energy_j": totals["energy_j"],
        "reconfig_energy_j": totals["reconfig_energy_j"],
        "latency_p50_ms": metrics["latency_ms"]["p50_ms"],
        "latency_p99_ms": metrics["latency_ms"]["p99_ms"],
        "makespan_s": totals["makespan_s"],
        "provisioned_power_w": portfolio.get("provisioned_power_w", 0.0),
        "wall_seconds": report.wall_seconds,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    profile = base_profile(args)
    single = bench_fleet(
        profile, "single-best", portfolio="mixed", portfolio_configs=1, route="fifo"
    )
    mixed_fifo = bench_fleet(
        profile, "portfolio-fifo", portfolio="mixed", route="fifo"
    )
    marginal = bench_fleet(
        profile, "portfolio-marginal", portfolio="mixed", route="marginal"
    )
    # The Pareto claim: same served windows, no worse p99, strictly less
    # energy than the best homogeneous fleet at equal instance count.
    dominates = (
        marginal["windows_served"] == single["windows_served"]
        and marginal["latency_p99_ms"] <= single["latency_p99_ms"]
        and marginal["energy_j"] + marginal["reconfig_energy_j"]
        < single["energy_j"]
    )
    return {
        "benchmark": "portfolio-vs-single-config",
        "workload": {
            "forecast": "mixed",
            "num_sessions": profile.num_sessions,
            "num_instances": profile.num_instances,
            "rate_hz": profile.rate_hz,
            "duration_s": profile.duration_s,
            "sequence_duration_s": profile.sequence_duration_s,
            "seed": profile.seed,
        },
        "fleets": [single, mixed_fifo, marginal],
        "portfolio_dominates_single": dominates,
        "energy_saving_fraction": (
            1.0
            - (marginal["energy_j"] + marginal["reconfig_energy_j"])
            / single["energy_j"]
            if single["energy_j"]
            else 0.0
        ),
        "p99_change_fraction": (
            marginal["latency_p99_ms"] / single["latency_p99_ms"] - 1.0
            if single["latency_p99_ms"]
            else 0.0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--instances", type=int, default=4)
    parser.add_argument("--rate", type=float, default=8.0)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--sequence-duration", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_portfolio.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--require-domination",
        action="store_true",
        help="exit non-zero unless the marginal portfolio Pareto-dominates "
        "the single-config fleet",
    )
    args = parser.parse_args()

    report = run_benchmark(args)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for fleet in report["fleets"]:
        mix = " + ".join(
            f"{c['count']}x{c['config_id']}" for c in fleet["configs"]
        ) or "homogeneous"
        print(
            f"{fleet['label']:<20} [{mix}] served={fleet['windows_served']} "
            f"p99={fleet['latency_p99_ms']:.2f} ms "
            f"energy={fleet['energy_j']:.3f} J errors={fleet['errors']}"
        )
    print(
        f"domination: {report['portfolio_dominates_single']} "
        f"(energy {report['energy_saving_fraction']:+.1%} saved, "
        f"p99 {report['p99_change_fraction']:+.1%})"
    )
    print(f"report -> {args.output}")

    if args.require_domination and not report["portfolio_dominates_single"]:
        print("FAIL: portfolio does not dominate the single-config fleet")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
