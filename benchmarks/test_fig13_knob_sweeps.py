"""Fig. 13a-c: knob sweeps vs resources and execution time."""

from conftest import report, run_once
from repro.experiments.fig13_14 import run_fig13a, run_fig13b, run_fig13c


def test_fig13a_nd_sweep(benchmark):
    result = run_once(benchmark, run_fig13a)
    report(result)
    times = result.column("time_ms")
    assert all(b <= a for a, b in zip(times, times[1:]))  # diminishing returns
    assert times[0] / times[-1] > 5.0  # large performance impact


def test_fig13b_nm_sweep(benchmark):
    result = run_once(benchmark, run_fig13b)
    report(result)
    times = result.column("time_ms")
    assert all(b <= a for a, b in zip(times, times[1:]))


def test_fig13c_s_sweep(benchmark):
    result = run_once(benchmark, run_fig13c)
    report(result)
    times = result.column("time_ms")
    dsp = result.column("dsp_pct")
    # Large impact with diminishing returns (one knob alone; the other
    # two floor the latency — the paper's full 20x span is joint).
    assert times[0] / min(times) > 3.0
    # s has the most significant resource impact (paper: ~50% more DSP
    # from s=1 to s=80).
    assert dsp[-1] - dsp[0] > 40.0


def test_joint_knob_span():
    """Sec. 4.1: varying the three knobs jointly changes the end-to-end
    latency by over 20x and the resource consumption by about 3x."""
    from repro.hw import DEFAULT_RESOURCE_MODEL, HardwareConfig, LatencyModel, ZC706

    latency = LatencyModel()
    smallest = HardwareConfig(1, 1, 1)
    largest = HardwareConfig(30, 25, 120)
    assert latency.seconds(smallest) / latency.seconds(largest) > 20.0
    use_small = DEFAULT_RESOURCE_MODEL.usage(smallest)
    use_large = DEFAULT_RESOURCE_MODEL.usage(largest)
    assert use_large["dsp"] / use_small["dsp"] > 2.5
