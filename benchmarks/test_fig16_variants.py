"""Fig. 16: High-Perf / Low-Power averages over EuRoC + KITTI."""

from conftest import report, run_once
from repro.experiments.fig15_16 import run_fig16


def test_fig16_variants(benchmark):
    result = run_once(benchmark, run_fig16)
    report(result)
    rows = {row[0]: row for row in result.rows}
    hp, lp = rows["High-Perf"], rows["Low-Power"]
    idx = {c: i for i, c in enumerate(result.columns)}
    # High-Perf is faster than Low-Power against both baselines.
    assert hp[idx["speedup_intel"]] > lp[idx["speedup_intel"]]
    assert hp[idx["speedup_arm"]] > lp[idx["speedup_arm"]]
    # Paper bands (headline: 6.2x/74x Intel, 39.7x/14.6x Arm for HP).
    assert 4.0 < hp[idx["speedup_intel"]] < 10.0
    assert 25.0 < hp[idx["speedup_arm"]] < 60.0
    assert 50.0 < hp[idx["energy_red_intel"]] < 150.0
    assert 9.0 < hp[idx["energy_red_arm"]] < 30.0
    benchmark.extra_info["high_perf"] = [round(v, 1) for v in hp[1:]]
    benchmark.extra_info["low_power"] = [round(v, 1) for v in lp[1:]]
