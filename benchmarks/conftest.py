"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures via the
experiment registry, times it once (these are experiments, not
micro-kernels), prints the regenerated rows, and asserts the shape
properties the paper's artifact exhibits.

The session configures the execution engine with a per-session artifact
cache: experiments that share upstream work (estimator runs, synthesis
solves) compute it once, while timings across sessions stay honest
because the cache starts empty.
"""

from __future__ import annotations

import pytest

from repro.engine import configure, get_engine


@pytest.fixture(scope="session", autouse=True)
def engine_cache(tmp_path_factory):
    """Route all benchmark experiments through one fresh engine cache."""
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    engine = configure(cache_dir=cache_dir, use_disk=True, jobs=1)
    yield engine


def pytest_sessionfinish(session, exitstatus):
    print()
    print(get_engine().stats_line())


def run_once(benchmark, func):
    """Time a heavy experiment a single time and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def report(result):
    """Print the regenerated table (shown with pytest -s; captured otherwise)."""
    print()
    print(result.render())
