"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures via the
experiment registry, times it once (these are experiments, not
micro-kernels), prints the regenerated rows, and asserts the shape
properties the paper's artifact exhibits.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func):
    """Time a heavy experiment a single time and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def report(result):
    """Print the regenerated table (shown with pytest -s; captured otherwise)."""
    print()
    print(result.render())
