"""Sec. 7.7b: generalization to non-SLAM MAP algorithms."""

from conftest import report, run_once
from repro.experiments.sec7x import run_sec77_apps


def test_sec77_other_algorithms(benchmark):
    result = run_once(benchmark, run_sec77_apps)
    report(result)
    idx = {c: i for i, c in enumerate(result.columns)}
    curve, pose = result.rows
    # Both apps accelerate well over the Intel baseline (paper: 8.5x and
    # 7.0x speedup; 257x and 124.8x energy).
    for row in result.rows:
        assert row[idx["speedup_x"]] > 3.0
        assert row[idx["energy_red_x"]] > 50.0
    # The paper's ordering: curve fitting gains more energy reduction.
    assert curve[idx["energy_red_x"]] > pose[idx["energy_red_x"]]


def test_apps_solve_correctly(benchmark):
    """The generated-accelerator claims rest on the apps actually
    solving their problems; run both solvers end to end."""
    import numpy as np

    from repro.apps import (
        make_curve_fitting_problem,
        make_pose_estimation_problem,
        solve_curve_fitting,
        solve_pose_estimation,
    )

    def run_both():
        curve = make_curve_fitting_problem(seed=7)
        curve_solution = solve_curve_fitting(curve)
        pose_problem = make_pose_estimation_problem(seed=7)
        pose, _ = solve_pose_estimation(pose_problem)
        return curve, curve_solution, pose_problem, pose

    curve, curve_solution, pose_problem, pose = run_once(benchmark, run_both)
    errors = [
        np.linalg.norm(curve.evaluate(curve_solution.x, t) - ref)
        for t, ref in zip(curve.times, curve.true_path)
    ]
    assert np.mean(errors) < 0.15
    assert np.linalg.norm(pose.translation - pose_problem.true_pose.translation) < 0.02
