"""Fig. 15: speedup / energy reduction of the Pareto designs (KITTI)."""

import numpy as np

from conftest import report, run_once
from repro.experiments.fig15_16 import run_fig15


def test_fig15_speedup_energy(benchmark):
    result = run_once(benchmark, run_fig15)
    report(result)
    speedup_intel = np.array(result.column("speedup_vs_intel"))
    speedup_arm = np.array(result.column("speedup_vs_arm"))
    energy_intel = np.array(result.column("energy_red_vs_intel"))
    energy_arm = np.array(result.column("energy_red_vs_arm"))
    # Every design wins on both axes against both baselines.
    assert speedup_intel.min() > 1.0 and speedup_arm.min() > 1.0
    assert energy_intel.min() > 10.0 and energy_arm.min() > 5.0
    # Paper's Fig. 15 relations: the Arm speedup exceeds the Intel
    # speedup, while the Intel energy reduction exceeds the Arm one.
    assert np.all(speedup_arm > speedup_intel)
    assert np.all(energy_intel > energy_arm)
    # Faster designs achieve higher speedups (frontier is sorted by
    # increasing latency).
    assert speedup_intel[0] > speedup_intel[-1]
