"""Extension benches: learned iteration policy and failure injection."""

from conftest import report, run_once
from repro.experiments.extensions import run_ext_learned_policy, run_ext_robustness


def test_ext_learned_policy(benchmark):
    result = run_once(benchmark, run_ext_learned_policy)
    report(result)
    table = result.column("table_iter")
    learned = result.column("learned_iter")
    # Both policies fit the same profile: they must broadly agree.
    agree_within_one = sum(
        1 for t, l in zip(table, learned) if abs(t - l) <= 1
    ) / len(table)
    assert agree_within_one > 0.7
    assert all(1 <= l <= 6 for l in learned)


def test_ext_robustness(benchmark):
    result = run_once(benchmark, run_ext_robustness)
    report(result)
    idx = {c: i for i, c in enumerate(result.columns)}
    clean, mid, high = result.rows
    # Without outliers the pipelines agree; with them the robust one
    # stays centimeter-grade while the plain one collapses.
    assert abs(clean[idx["plain_rel_err_m"]] - clean[idx["robust_rel_err_m"]]) < 0.01
    assert high[idx["plain_rel_err_m"]] > 10 * high[idx["robust_rel_err_m"]]
    assert high[idx["robust_rel_err_m"]] < 0.10


def test_ext_wordlength(benchmark):
    from repro.experiments.extensions import run_ext_wordlength

    result = run_once(benchmark, run_ext_wordlength)
    report(result)
    errors = dict(zip(result.column("fraction_bits"), result.column("relative_error")))
    # The classic curve: error falls by orders of magnitude with bits,
    # and the RTL's Q15.16 point is already accurate.
    assert errors[4] > 100 * errors[20]
    assert errors[16] < 0.1


def test_ext_realtime_margin(benchmark):
    from repro.experiments.extensions import run_ext_realtime_margin

    result = run_once(benchmark, run_ext_realtime_margin)
    report(result)
    margins = result.column("margin_x")
    assert min(margins) > 2.0  # every design, every trace: real time


def test_ext_accuracy_table(benchmark):
    from repro.experiments.extensions import run_ext_accuracy_table

    result = run_once(benchmark, run_ext_accuracy_table)
    report(result)
    rows = {row[0]: row for row in result.rows}
    idx = {c: i for i, c in enumerate(result.columns)}
    euroc = [v[idx["ate_cm"]] for k, v in rows.items() if k.startswith("euroc")]
    kitti = [v[idx["ate_cm"]] for k, v in rows.items() if k.startswith("kitti")]
    assert len(euroc) == 5 and len(kitti) == 11  # the full catalog
    assert max(euroc) < 10.0  # drone: centimeters
    assert max(kitti) < 100.0  # car: sub-meter over the cut
