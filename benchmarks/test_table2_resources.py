"""Tbl. 2: resource consumption of the High-Perf / Low-Power designs."""

from conftest import report, run_once
from repro.experiments.fig15_16 import run_tbl2


def test_table2_resources(benchmark):
    result = run_once(benchmark, run_tbl2)
    report(result)
    idx = {c: i for i, c in enumerate(result.columns)}
    hp, lp = result.rows
    # High-Perf consumes more of every resource and has larger knobs.
    for column in ("lut_pct", "ff_pct", "bram_pct", "dsp_pct", "nd", "nm", "s"):
        assert hp[idx[column]] > lp[idx[column]]
    # Both designs fit the ZC706.
    for row in result.rows:
        for column in ("lut_pct", "ff_pct", "bram_pct", "dsp_pct"):
            assert row[idx[column]] <= 100.0
    # DSP is among the most demanded resources (the paper's limiter).
    assert hp[idx["dsp_pct"]] == max(
        hp[idx[c]] for c in ("lut_pct", "ff_pct", "bram_pct", "dsp_pct")
    )
