"""Fig. 12: more NLS iterations -> lower RMSE (KITTI profiling)."""

from conftest import report, run_once
from repro.experiments.fig11_12 import run_fig12


def test_fig12_iterations_vs_rmse(benchmark):
    result = run_once(benchmark, run_fig12)
    report(result)
    rmses = result.column("rmse_m")
    # Decreasing, saturating trend: 1 iteration is much worse than 6,
    # and the tail flattens.
    assert rmses[0] > 2.0 * rmses[-1]
    assert rmses[-2] < 1.8 * rmses[-1]
    benchmark.extra_info["rmse_by_cap"] = dict(
        zip(result.column("iteration_cap"), [round(r, 3) for r in rmses])
    )
