"""Ablation benches for the design choices DESIGN.md calls out.

* Sec. 4.2 — the feature-stationary Jacobian dataflow vs column-major.
* Sec. 4.3 — Evaluate/Update pipelining with s Update units vs the
  serialized schedule an HLS tool produces (the source of the 16.4x gap).
* Sec. 2.2 — MAP vs filtering (MSCKF) on the same sequence.
"""

import numpy as np

from conftest import run_once
from repro.hw import REFERENCE_WORKLOAD
from repro.hw.dataflow import dataflow_energy_ratio
from repro.hw.latency import cholesky_latency
from repro.hw.sim import simulate_cholesky


def test_sec42_dataflow_ablation(benchmark):
    """Feature-stationary beats rotation-stationary by a wide margin on
    every SLAM-typical window shape."""
    ratio = run_once(benchmark, lambda: dataflow_energy_ratio(REFERENCE_WORKLOAD))
    print(f"\nrotation-stationary / feature-stationary energy = {ratio:.1f}x")
    assert ratio > 3.0


def test_sec43_cholesky_pipelining_ablation(benchmark):
    """The paper's Cholesky co-design: exposing the Evaluate/Update
    pipeline and the Update independence buys an order of magnitude over
    the serialized (HLS-style) schedule."""

    def measure():
        m = 225
        serialized = simulate_cholesky(m=m, s=1).total_cycles
        pipelined = simulate_cholesky(m=m, s=57).total_cycles
        return serialized, pipelined

    serialized, pipelined = run_once(benchmark, measure)
    print(f"\nserialized {serialized:,.0f} vs pipelined {pipelined:,.0f} cycles "
          f"({serialized / pipelined:.1f}x)")
    assert serialized / pipelined > 8.0
    # The analytical Equ. 7 predicts the same ordering.
    assert cholesky_latency(225, 1) / cholesky_latency(225, 57) > 8.0


def test_sec22_map_vs_filtering(benchmark):
    """Sec. 2.1/2.2: MAP and filtering both work; under outliers the
    robust MAP pipeline is at least as accurate while the filter must
    discard a large share of its tracks."""
    from dataclasses import replace

    from repro.baselines.msckf import MsckfFilter
    from repro.data.sequences import EUROC_SEQUENCES, make_sequence
    from repro.data.tracks import TrackerConfig
    from repro.slam import (
        EstimatorConfig,
        SlidingWindowEstimator,
        absolute_trajectory_error,
    )

    def run_both():
        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=8.0,
            tracker=TrackerConfig(outlier_probability=0.10),
        )
        sequence = make_sequence(config)
        filter_result = MsckfFilter().run(sequence)
        map_result = SlidingWindowEstimator(
            EstimatorConfig(window_size=8, huber_delta=2.5, outlier_gate_px=8.0)
        ).run(sequence)
        return filter_result, map_result

    filter_result, map_result = run_once(benchmark, run_both)
    ate_filter = absolute_trajectory_error(
        np.array(filter_result.estimated_positions),
        np.array(filter_result.true_positions),
    )
    ate_map = absolute_trajectory_error(
        np.array(map_result.estimated_positions),
        np.array(map_result.true_positions),
    )
    rejected_share = filter_result.tracks_rejected / max(
        filter_result.updates_applied + filter_result.tracks_rejected, 1
    )
    print(f"\nMSCKF ATE {100 * ate_filter:.1f} cm (rejected {100 * rejected_share:.0f}% "
          f"of tracks) vs robust MAP ATE {100 * ate_map:.1f} cm")
    assert ate_map < ate_filter * 1.3
    assert rejected_share > 0.3
