"""Sec. 7.7a: generalization to other FPGA boards."""

from conftest import report, run_once
from repro.experiments.sec7x import run_sec77_fpgas


def test_sec77_other_fpgas(benchmark):
    result = run_once(benchmark, run_sec77_fpgas)
    report(result)
    idx = {c: i for i, c in enumerate(result.columns)}
    kintex, zc706, virtex = result.rows
    # Bigger boards admit designs at least as fast.
    assert kintex[idx["latency_ms"]] >= zc706[idx["latency_ms"]]
    assert zc706[idx["latency_ms"]] >= virtex[idx["latency_ms"]]
    # All boards deliver multi-x speedups and large energy reductions
    # over the Intel baseline (paper: 6.6x-10.2x, >100x energy).
    for row in result.rows:
        assert row[idx["speedup_intel"]] > 4.0
        assert row[idx["energy_red_intel"]] > 40.0
        assert row[idx["speedup_arm"]] > 25.0
