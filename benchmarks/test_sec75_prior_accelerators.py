"""Sec. 7.5: comparison with prior accelerators and the HLS Cholesky."""

from conftest import report, run_once
from repro.experiments.sec7x import run_sec75


def test_sec75_prior_accelerators(benchmark):
    result = run_once(benchmark, run_sec75)
    report(result)
    rows = {row[0]: row for row in result.rows}
    pi_ba = next(v for k, v in rows.items() if k.startswith("pi-BA"))
    bax = next(v for k, v in rows.items() if k.startswith("BAX"))
    zhang = next(v for k, v in rows.items() if k.startswith("Zhang"))
    pisces = next(v for k, v in rows.items() if k.startswith("PISCES"))
    hls = next(v for k, v in rows.items() if "Cholesky" in k)
    # Paper factors: 137x/132x, 9x/44% less, >20x, 5.4x/3x energy, 16.4x.
    assert 100 < pi_ba[1] < 180 and 100 < pi_ba[2] < 180
    assert 6 < bax[1] < 13
    assert zhang[1] > 15
    assert 4 < pisces[1] < 8
    assert pisces[2] < 1.0  # PISCES uses less energy (it is the low-power one)
    assert 10 < hls[1] < 25
