"""Sec. 7.6: dynamic optimization energy savings and accuracy impact."""

import numpy as np

from conftest import report, run_once
from repro.experiments.sec76 import run_sec76, run_sec76_combined


def test_sec76_dynamic_optimization(benchmark):
    result = run_once(benchmark, run_sec76)
    report(result)
    savings = np.array(result.column("energy_saving_pct"))
    deltas = np.array(result.column("accuracy_delta_cm"))
    # Double-digit savings on average (paper: 20.8-21.6% for High-Perf).
    assert savings.mean() > 10.0
    assert savings.min() > 0.0
    # Accuracy is essentially unaffected (paper: at most 0.01 cm worse,
    # sometimes better); allow a fraction of a centimeter either way.
    assert np.abs(deltas).max() < 1.0
    benchmark.extra_info["mean_saving_pct"] = round(float(savings.mean()), 1)


def test_sec76_combined_with_dynamic(benchmark):
    result = run_once(benchmark, run_sec76_combined)
    report(result)
    idx = {c: i for i, c in enumerate(result.columns)}
    rows = {row[0]: row for row in result.rows}
    hp, lp = rows["High-Perf"], rows["Low-Power"]
    # With dynamic optimization both variants still beat both CPUs, and
    # High-Perf remains ahead of Low-Power.
    assert hp[idx["speedup_intel"]] > lp[idx["speedup_intel"]] > 1.0
    assert hp[idx["energy_red_intel"]] > 40.0
    assert hp[idx["energy_red_arm"]] > 9.0
