"""Sec. 7.3: generator efficiency vs the exhaustive FPGA flow."""

from conftest import report, run_once
from repro.experiments.sec7x import run_sec73


def test_sec73_generator_efficiency(benchmark):
    result = run_once(benchmark, run_sec73)
    report(result)
    values = dict(zip(result.column("quantity"), result.column("value")))
    assert values["design space points"] == 90_000
    assert 14.0 < float(values["exhaustive FPGA-flow estimate (years)"]) < 17.0
    assert float(values["our generator (seconds)"]) < 3.0
